//! Aligned ASCII tables for the `repro` CLI output.

/// A simple column-aligned table builder.
///
/// The per-figure harnesses print one table per paper panel, e.g. for
/// Fig 10(left):
///
/// ```text
/// degree  tput_gbps  drop_pct
/// 0x      97.21      0.0000
/// 1x      84.02      0.0001
/// ...
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have the same arity as the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with two-space column separation.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(cell);
                if i + 1 < cols {
                    for _ in 0..(widths[i] - cell.chars().count() + 2) {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimal places (throughputs, Gbps).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a drop-rate percentage with enough precision for the paper's
/// log-scale axes (values range 1e-5 % .. 10 %).
pub fn pct(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x < 0.001 {
        format!("{x:.6}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long_header", "c"]);
        t.row(["1", "2", "3"]);
        t.row(["100", "2", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Data rows align: the last column starts at the same offset.
        assert_eq!(lines[1].rfind('3'), lines[2].rfind('3'));
        assert_eq!(lines[0].rfind('c'), lines[1].rfind('3'));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(43.218), "43.22");
        assert_eq!(pct(0.0), "0");
        assert_eq!(pct(0.0000312), "0.000031");
        assert_eq!(pct(0.31), "0.3100");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.render(), "a\n");
    }
}
