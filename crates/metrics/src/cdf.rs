//! Empirical CDFs (paper Fig 7: congestion-signal read latency).

use hostcc_sim::Nanos;

/// An empirical cumulative distribution over nanosecond samples.
///
/// Unlike [`crate::Histogram`], this stores raw samples (sorted lazily), so
/// it is exact; use it for experiments with bounded sample counts like the
/// Fig 7 measurement-latency CDFs.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<u64>,
    sorted: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: Nanos) {
        self.samples.push(v.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Merge another CDF's samples into this one. The combined distribution
    /// is exactly the one a single CDF would have collected, regardless of
    /// merge order — this is how a parallel experiment sweep aggregates
    /// per-cell read-latency samples into one sweep-wide distribution.
    pub fn merge(&mut self, other: &Cdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Exact quantile (nearest-rank). None when empty.
    pub fn quantile(&mut self, q: f64) -> Option<Nanos> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1);
        Some(Nanos::from_nanos(self.samples[rank - 1]))
    }

    /// Fraction of samples ≤ `v`.
    pub fn at(&mut self, v: Nanos) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let v = v.as_nanos();
        let idx = self.samples.partition_point(|&s| s <= v);
        idx as f64 / self.samples.len() as f64
    }

    /// Evaluate the CDF at `points` evenly spaced quantiles, returning
    /// `(value, cumulative_fraction)` pairs — the series the Fig 7 plot uses.
    pub fn curve(&mut self, points: usize) -> Vec<(Nanos, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (1..=points)
            .map(|i| {
                let f = i as f64 / points as f64;
                (self.quantile(f).unwrap(), f)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles() {
        let mut c = Cdf::new();
        for v in [30u64, 10, 20, 40, 50] {
            c.record(Nanos::from_nanos(v));
        }
        assert_eq!(c.quantile(0.0), Some(Nanos::from_nanos(10)));
        assert_eq!(c.quantile(0.5), Some(Nanos::from_nanos(30)));
        assert_eq!(c.quantile(1.0), Some(Nanos::from_nanos(50)));
    }

    #[test]
    fn at_fraction() {
        let mut c = Cdf::new();
        for v in 1..=10u64 {
            c.record(Nanos::from_nanos(v * 100));
        }
        assert_eq!(c.at(Nanos::from_nanos(500)), 0.5);
        assert_eq!(c.at(Nanos::from_nanos(99)), 0.0);
        assert_eq!(c.at(Nanos::from_nanos(5000)), 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let mut c = Cdf::new();
        let mut x: u64 = 99;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            c.record(Nanos::from_nanos(400 + x % 800));
        }
        let curve = c.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert_eq!(c.count(), 0);
        // Every quantile of an empty CDF is None, including the (clamped)
        // out-of-range ones — no panic, no sentinel value.
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(c.quantile(q), None);
        }
        assert_eq!(c.at(Nanos::ZERO), 0.0);
        assert_eq!(c.at(Nanos::from_nanos(1)), 0.0);
        assert!(c.curve(10).is_empty());
        // Zero-point curves are empty even with samples present.
        c.record(Nanos::from_nanos(7));
        assert!(c.curve(0).is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let (mut a, mut b) = (Cdf::new(), Cdf::new());
        for v in [30u64, 10] {
            a.record(Nanos::from_nanos(v));
        }
        for v in [20u64, 40] {
            b.record(Nanos::from_nanos(v));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), 4);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(ab.quantile(q), ba.quantile(q));
        }
        assert_eq!(ab.quantile(1.0), Some(Nanos::from_nanos(40)));
        // Merging an empty CDF is a no-op.
        ab.merge(&Cdf::new());
        assert_eq!(ab.count(), 4);
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut c = Cdf::new();
        c.record(Nanos::from_nanos(10));
        assert_eq!(c.quantile(1.0), Some(Nanos::from_nanos(10)));
        c.record(Nanos::from_nanos(5));
        assert_eq!(c.quantile(0.0), Some(Nanos::from_nanos(5)));
    }
}
