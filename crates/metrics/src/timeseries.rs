//! Time-series recording for the paper's microscopic figures (8, 18, 19).

use hostcc_sim::Nanos;

/// A recorded `(time, value)` series with simple query/rendering helpers.
///
/// The deep-dive figures plot `I_S`, `B_S` and the host-local response level
/// over 250 µs – 1 ms windows; the experiment harness records one sample per
/// hostCC sampling interval and dumps the series both as CSV (for plotting)
/// and as a terminal sparkline (for eyeballing in CI logs).
///
/// A series built with [`TimeSeries::with_capacity`] bounds its memory by
/// stride-doubling: once the buffer fills, every other retained point is
/// dropped and the keep-stride doubles, so an arbitrarily long run keeps at
/// most `max_points` samples while preserving the first and last point
/// exactly.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    times: Vec<Nanos>,
    values: Vec<f64>,
    /// 0 means unbounded (the historical behaviour).
    max_points: usize,
    /// Keep every `stride`-th pushed sample once bounded.
    stride: u64,
    /// Total samples ever pushed (only tracked when bounded).
    seen: u64,
    /// The last buffered point is an off-stride "provisional" endpoint that
    /// the next push will replace (it only survives if it stays last).
    provisional: bool,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new("")
    }
}

impl TimeSeries {
    /// An empty, named, unbounded series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
            max_points: 0,
            stride: 1,
            seen: 0,
            provisional: false,
        }
    }

    /// An empty, named series that retains at most `max_points` samples via
    /// stride-doubling downsampling (`max_points == 0` means unbounded).
    pub fn with_capacity(name: impl Into<String>, max_points: usize) -> Self {
        let mut s = TimeSeries::new(name);
        // A meaningful bound needs room for both endpoints.
        s.max_points = if max_points == 0 {
            0
        } else {
            max_points.max(2)
        };
        s
    }

    /// The series name (used as the CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured retention bound (0 = unbounded).
    pub fn max_points(&self) -> usize {
        self.max_points
    }

    /// Append a sample. Samples must arrive in non-decreasing time order.
    pub fn push(&mut self, t: Nanos, v: f64) {
        if let Some(&last) = self.times.last() {
            debug_assert!(t >= last, "time series sample out of order");
        }
        if self.max_points == 0 {
            self.times.push(t);
            self.values.push(v);
            return;
        }
        // Drop the previous provisional endpoint: it is replaced by the
        // newer sample (and re-kept below if it happens to be on-stride).
        if self.provisional {
            self.times.pop();
            self.values.pop();
            self.provisional = false;
        }
        let keep = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        self.times.push(t);
        self.values.push(v);
        self.provisional = !keep;
        if keep && self.times.len() >= self.max_points {
            self.halve();
            // Halving keeps even indices; if the just-pushed point sat at an
            // odd index it was dropped — restore it as the provisional end.
            if self.times.last() != Some(&t) {
                self.times.push(t);
                self.values.push(v);
                self.provisional = true;
            }
        }
    }

    /// Drop every other retained point (keeping index 0, hence the first
    /// endpoint) and double the keep-stride.
    fn halve(&mut self) {
        let mut i = 0usize;
        self.times.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        let mut j = 0usize;
        self.values.retain(|_| {
            let keep = j.is_multiple_of(2);
            j += 1;
            keep
        });
        self.stride = self.stride.saturating_mul(2);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterate over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Nanos, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The sub-series within `[from, to)`.
    pub fn window(&self, from: Nanos, to: Nanos) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        for (t, v) in self.iter() {
            if t >= from && t < to {
                out.push(t, v);
            }
        }
        out
    }

    /// Mean value over all samples (unweighted).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Minimum value.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Fraction of samples with value strictly above `threshold` — used to
    /// report "time spent with `I_S > I_T`".
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v > threshold).count() as f64 / self.values.len() as f64
    }

    /// Downsample to at most `n` points by averaging fixed-size chunks
    /// (keeps plots readable without distorting level shifts).
    pub fn downsample(&self, n: usize) -> TimeSeries {
        if n == 0 || self.len() <= n {
            return self.clone();
        }
        let chunk = self.len().div_ceil(n);
        let mut out = TimeSeries::new(self.name.clone());
        for c in self.times.chunks(chunk).zip(self.values.chunks(chunk)) {
            let (ts, vs) = c;
            let t = ts[ts.len() / 2];
            let v = vs.iter().sum::<f64>() / vs.len() as f64;
            out.push(t, v);
        }
        out
    }

    /// Render as CSV lines: `time_us,value`.
    pub fn to_csv(&self) -> String {
        let mut s = format!("time_us,{}\n", self.name);
        for (t, v) in self.iter() {
            s.push_str(&format!("{:.3},{:.4}\n", t.as_micros_f64(), v));
        }
        s
    }

    /// Render a unicode sparkline of `width` columns (min–max normalized).
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.is_empty() || width == 0 {
            return String::new();
        }
        let ds = self.downsample(width);
        let (lo, hi) = (ds.min().unwrap(), ds.max().unwrap());
        let span = (hi - lo).max(1e-12);
        ds.values
            .iter()
            .map(|v| {
                let i = (((v - lo) / span) * 7.0).round() as usize;
                BARS[i.min(7)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("x");
        for &(t, v) in vals {
            s.push(Nanos::from_nanos(t), v);
        }
        s
    }

    #[test]
    fn basic_stats() {
        let s = series(&[(0, 1.0), (10, 3.0), (20, 2.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn window_selects_half_open_range() {
        let s = series(&[(0, 0.0), (10, 1.0), (20, 2.0), (30, 3.0)]);
        let w = s.window(Nanos::from_nanos(10), Nanos::from_nanos(30));
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(1.5));
    }

    #[test]
    fn window_includes_from_and_excludes_to() {
        let s = series(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        // A sample exactly at `from` is kept; exactly at `to` is not.
        let w = s.window(Nanos::from_nanos(10), Nanos::from_nanos(30));
        assert_eq!(w.iter().map(|(_, v)| v).collect::<Vec<_>>(), [1.0, 2.0]);
        // Degenerate window: from == to selects nothing.
        assert!(s
            .window(Nanos::from_nanos(20), Nanos::from_nanos(20))
            .is_empty());
        // The window keeps the series name for CSV headers.
        assert_eq!(w.name(), "x");
    }

    #[test]
    fn fraction_above_threshold() {
        let s = series(&[(0, 60.0), (1, 70.0), (2, 80.0), (3, 90.0)]);
        assert_eq!(s.fraction_above(70.0), 0.5);
        assert_eq!(s.fraction_above(100.0), 0.0);
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let mut s = TimeSeries::new("x");
        for i in 0..1000u64 {
            s.push(Nanos::from_nanos(i), i as f64);
        }
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert!((d.mean().unwrap() - s.mean().unwrap()).abs() < 1.0);
    }

    #[test]
    fn csv_format() {
        let s = series(&[(1000, 1.5)]);
        let csv = s.to_csv();
        assert!(csv.starts_with("time_us,x\n"));
        assert!(csv.contains("1.000,1.5000"));
    }

    #[test]
    fn sparkline_has_requested_width() {
        let mut s = TimeSeries::new("x");
        for i in 0..100u64 {
            s.push(Nanos::from_nanos(i), (i % 10) as f64);
        }
        let sl = s.sparkline(20);
        assert_eq!(sl.chars().count(), 20);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.sparkline(10), "");
    }

    #[test]
    fn bounded_series_stays_under_cap_and_preserves_endpoints() {
        const N: u64 = 10_000_000;
        const CAP: usize = 1024;
        let mut s = TimeSeries::with_capacity("x", CAP);
        for i in 0..N {
            s.push(Nanos::from_nanos(i), i as f64);
        }
        assert!(s.len() <= CAP, "len {} exceeds cap {}", s.len(), CAP);
        // Stride-doubling must still leave a usable resolution.
        assert!(s.len() >= CAP / 4, "len {} collapsed too far", s.len());
        let first = s.iter().next().unwrap();
        let last = s.iter().last().unwrap();
        assert_eq!(first, (Nanos::from_nanos(0), 0.0));
        assert_eq!(last, (Nanos::from_nanos(N - 1), (N - 1) as f64));
        // Samples stay in order and roughly uniform (a linear ramp keeps
        // its mean under stride downsampling).
        let mut prev = None;
        for (t, _) in s.iter() {
            if let Some(p) = prev {
                assert!(t > p);
            }
            prev = Some(t);
        }
        let mid = (N - 1) as f64 / 2.0;
        assert!((s.mean().unwrap() - mid).abs() / mid < 0.02);
    }

    #[test]
    fn bounded_series_below_cap_keeps_everything() {
        let mut s = TimeSeries::with_capacity("x", 100);
        for i in 0..50u64 {
            s.push(Nanos::from_nanos(i), i as f64);
        }
        assert_eq!(s.len(), 50);
        assert_eq!(s.iter().last(), Some((Nanos::from_nanos(49), 49.0)));
    }

    #[test]
    fn unbounded_default_never_drops() {
        let mut s = TimeSeries::new("x");
        for i in 0..10_000u64 {
            s.push(Nanos::from_nanos(i), 0.0);
        }
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.max_points(), 0);
    }
}
