//! Log-bucketed latency histogram with HDR-style bounded relative error.

use hostcc_sim::Nanos;

/// Sub-buckets per power of two; gives ≤ 1/64 ≈ 1.6 % relative error,
/// comfortably below the run-to-run noise of any latency experiment.
const SUBBUCKETS: u64 = 64;
const SUBBUCKET_BITS: u32 = 6;

/// A latency histogram over `u64` nanosecond values.
///
/// Values are placed in log-linear buckets (64 linear sub-buckets per power
/// of two), the same scheme HdrHistogram uses, so percentile queries are
/// O(buckets) and the memory footprint is fixed regardless of sample count.
/// This matters: the Fig 4 / Fig 12 experiments record millions of RPC
/// latencies spanning 10 µs to 200 ms.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

fn bucket_index(value: u64) -> usize {
    // Values below SUBBUCKETS get exact (linear) buckets.
    if value < SUBBUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUBBUCKET_BITS + 1;
    let sub = (value >> shift) - (SUBBUCKETS >> 1);
    ((shift as u64 + 1) * (SUBBUCKETS >> 1) + SUBBUCKETS / 2 + sub) as usize
}

fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBBUCKETS {
        return index;
    }
    let half = SUBBUCKETS >> 1;
    let rel = index - half - SUBBUCKETS / 2;
    let shift = (rel / half) as u32;
    let sub = rel % half + half;
    ((sub + 1) << shift) - 1
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64-bit values → at most (64 - 6 + 1) * 32 + 64 buckets.
        let max_buckets = bucket_index(u64::MAX) + 1;
        Histogram {
            counts: vec![0; max_buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, value: Nanos) {
        let v = value.as_nanos();
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (None when empty).
    pub fn min(&self) -> Option<Nanos> {
        (self.total > 0).then_some(Nanos::from_nanos(self.min))
    }

    /// Largest recorded sample, at bucket resolution (None when empty).
    pub fn max(&self) -> Option<Nanos> {
        (self.total > 0).then_some(Nanos::from_nanos(self.max))
    }

    /// Arithmetic mean of the raw samples (exact, not bucketed).
    pub fn mean(&self) -> Option<Nanos> {
        (self.total > 0).then(|| Nanos::from_nanos((self.sum / self.total as u128) as u64))
    }

    /// The value at quantile `q` in `[0, 1]`, with ≤ 1.6 % relative error.
    ///
    /// Follows the HdrHistogram convention: the returned value is an upper
    /// bound of the bucket containing the q-th sample.
    pub fn quantile(&self, q: f64) -> Option<Nanos> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Nanos::from_nanos(bucket_upper_bound(i).min(self.max)));
            }
        }
        Some(Nanos::from_nanos(self.max))
    }

    /// The paper's whisker set: {P50, P90, P99, P99.9, P99.99}.
    pub fn whiskers(&self) -> Option<[Nanos; 5]> {
        Some([
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
            self.quantile(0.999)?,
            self.quantile(0.9999)?,
        ])
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Discard all samples.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.whiskers(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUBBUCKETS {
            h.record(Nanos::from_nanos(v));
        }
        assert_eq!(h.min(), Some(Nanos::ZERO));
        assert_eq!(h.max(), Some(Nanos::from_nanos(SUBBUCKETS - 1)));
        // Median of 0..63 inclusive: 32nd sample is value 31.
        assert_eq!(h.quantile(0.5), Some(Nanos::from_nanos(31)));
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        let values = [100u64, 1_000, 10_000, 123_456, 1_000_000, 200_000_000];
        for &v in &values {
            h.clear();
            h.record(Nanos::from_nanos(v));
            let got = h.quantile(1.0).unwrap().as_nanos() as f64;
            let err = (got - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Nanos::from_nanos(x % 10_000_000));
        }
        let mut last = Nanos::ZERO;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0).unwrap();
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn uniform_median_is_near_half() {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(Nanos::from_nanos(v));
        }
        let med = h.quantile(0.5).unwrap().as_nanos() as f64;
        assert!((med - 50_000.0).abs() / 50_000.0 < 0.02, "median={med}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(Nanos::from_nanos(v));
        }
        assert_eq!(h.mean(), Some(Nanos::from_nanos(20)));
    }

    #[test]
    fn rto_scale_tail_is_visible() {
        // The Fig 4 structure: many ~60 µs latencies plus a few 200 ms RTOs.
        let mut h = Histogram::new();
        for _ in 0..9_970 {
            h.record(Nanos::from_micros(60));
        }
        for _ in 0..30 {
            h.record(Nanos::from_millis(200));
        }
        let p99 = h.quantile(0.99).unwrap();
        let p999 = h.quantile(0.999).unwrap();
        assert!(p99 < Nanos::from_micros(70), "p99={p99}");
        assert!(p999 >= Nanos::from_millis(198), "p999={p999}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Nanos::from_nanos(10));
        b.record(Nanos::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(Nanos::from_nanos(10)));
        assert!(a.max().unwrap() >= Nanos::from_nanos(990_000));
    }

    #[test]
    fn quantile_extremes() {
        let mut h = Histogram::new();
        h.record(Nanos::from_nanos(5));
        h.record(Nanos::from_nanos(500_000));
        assert_eq!(h.quantile(0.0).unwrap(), Nanos::from_nanos(5));
        let hi = h.quantile(1.0).unwrap().as_nanos();
        assert!((hi as f64 - 500_000.0).abs() / 500_000.0 <= 1.0 / 64.0);
    }

    #[test]
    fn single_sample_collapses_all_quantiles() {
        let mut h = Histogram::new();
        h.record(Nanos::from_micros(60));
        let p0 = h.quantile(0.0).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert_eq!(p0, p100, "one sample: every quantile is that sample");
        let err = (p0.as_nanos() as f64 - 60_000.0).abs() / 60_000.0;
        assert!(err <= 1.0 / 64.0 + 1e-9, "p0={p0}");
        assert_eq!(h.whiskers().unwrap(), [p0; 5]);
        assert_eq!(h.min(), Some(Nanos::from_micros(60)));
        assert_eq!(h.mean(), Some(Nanos::from_micros(60)));
    }

    #[test]
    fn p0_and_p100_are_clamped_and_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in [3u64, 7, 11] {
            h.record(Nanos::from_nanos(v));
        }
        // Sub-64 values use exact linear buckets: the extremes are exact.
        assert_eq!(h.quantile(0.0), Some(Nanos::from_nanos(3)));
        assert_eq!(h.quantile(1.0), Some(Nanos::from_nanos(11)));
        // Out-of-range q is clamped, not an error.
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn bucket_round_trip_bounds() {
        // Every value must land in a bucket whose upper bound is >= value
        // and within the relative-error budget.
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            65_535,
            1 << 30,
            1 << 50,
        ] {
            let i = bucket_index(v);
            let ub = bucket_upper_bound(i);
            assert!(ub >= v, "v={v} ub={ub}");
            if v >= SUBBUCKETS {
                assert!((ub - v) as f64 / v as f64 <= 1.0 / 32.0, "v={v} ub={ub}");
            }
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(Nanos::from_nanos(42));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }
}
