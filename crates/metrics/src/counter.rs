//! Event counters with windowed resets (packet drops, retransmits, marks…).

/// A monotone event counter with a resettable measurement window.
///
/// Drop *rates* in the paper are percentages of packets received, so the
/// usual pattern is two counters (e.g. `drops` and `arrivals`) and
/// [`Counter::ratio_of`] at the end of the measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    window: u64,
    lifetime: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.window += n;
        self.lifetime += n;
    }

    /// Count within the current window.
    #[inline]
    pub fn get(&self) -> u64 {
        self.window
    }

    /// Count since construction (across resets).
    #[inline]
    pub fn lifetime(&self) -> u64 {
        self.lifetime
    }

    /// Zero the window count (lifetime is preserved).
    pub fn reset(&mut self) {
        self.window = 0;
    }

    /// Fold another counter into this one (window and lifetime both add) —
    /// aggregation across the independent cells of an experiment sweep.
    pub fn merge(&mut self, other: &Counter) {
        self.window += other.window;
        self.lifetime += other.lifetime;
    }

    /// `self / denominator` as a fraction; 0 when the denominator is empty.
    pub fn ratio_of(&self, denominator: &Counter) -> f64 {
        if denominator.window == 0 {
            0.0
        } else {
            self.window as f64 / denominator.window as f64
        }
    }

    /// `ratio_of` expressed in percent — the unit of the paper's drop-rate
    /// axes.
    pub fn percent_of(&self, denominator: &Counter) -> f64 {
        self.ratio_of(denominator) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.lifetime(), 5);
    }

    #[test]
    fn ratios() {
        let mut drops = Counter::new();
        let mut total = Counter::new();
        drops.add(3);
        total.add(1000);
        assert!((drops.ratio_of(&total) - 0.003).abs() < 1e-12);
        assert!((drops.percent_of(&total) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_window_and_lifetime() {
        let mut a = Counter::new();
        a.add(5);
        a.reset();
        a.add(2); // window 2, lifetime 7
        let mut b = Counter::new();
        b.add(3);
        a.merge(&b);
        assert_eq!(a.get(), 5);
        assert_eq!(a.lifetime(), 10);
    }

    #[test]
    fn ratio_with_zero_denominator() {
        let drops = Counter::new();
        let total = Counter::new();
        assert_eq!(drops.ratio_of(&total), 0.0);
    }
}
