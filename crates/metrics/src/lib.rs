//! Measurement infrastructure for the hostCC reproduction.
//!
//! The paper's evaluation reports four kinds of quantities, and this crate
//! provides one tool per kind:
//!
//! * tail latencies (Fig 4, 12, 15: P50–P99.99 whiskers) — [`Histogram`],
//!   a log-bucketed (HDR-style) latency histogram;
//! * throughputs and drop rates (Fig 2, 3, 10, 11, 13, 14, 16, 17) —
//!   [`Meter`] and [`Counter`];
//! * time series (Fig 8, 18, 19: `I_S`, `B_S`, response level vs time) —
//!   [`TimeSeries`];
//! * empirical CDFs (Fig 7: signal read latency) — [`Cdf`].
//!
//! [`Table`] renders experiment outputs as aligned ASCII tables so that the
//! `repro` CLI prints the same rows/series the paper plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod counter;
mod histogram;
mod meter;
mod table;
mod timeseries;

pub use cdf::Cdf;
pub use counter::Counter;
pub use histogram::Histogram;
pub use meter::Meter;
pub use table::{f2, pct, Table};
pub use timeseries::TimeSeries;
