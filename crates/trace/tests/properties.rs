//! Property-based tests for the trace crate.
//!
//! The sweep engine merges per-worker `TraceCounts` at join time and
//! relies on the merge being order-independent for deterministic totals,
//! so the algebraic laws are pinned here: commutativity, identity, and
//! agreement with recording everything into a single tracer.

use hostcc_sim::Nanos;
use hostcc_trace::{DropLocus, TraceCounts, TraceEvent, TraceFilter, TraceKind, Tracer};
use proptest::prelude::*;

/// One representative event per [`TraceKind`], selected by index.
fn event_of(idx: usize) -> TraceEvent {
    match TraceKind::ALL[idx % TraceKind::COUNT] {
        TraceKind::PcieStall => TraceEvent::PcieCreditStall { backlog_bytes: 64 },
        TraceKind::PcieGrant => TraceEvent::PcieCreditGrant { stalled_ns: 100 },
        TraceKind::IioOccupancy => TraceEvent::IioOccupancy { cachelines: 65.0 },
        TraceKind::DdioEviction => TraceEvent::DdioEviction { fraction: 0.5 },
        TraceKind::MbaRequest => TraceEvent::MbaRequest { level: 3 },
        TraceKind::MbaEffective => TraceEvent::MbaEffective { level: 3 },
        TraceKind::SignalSample => TraceEvent::SignalSample {
            is: 65.0,
            bs_gbps: 103.0,
            read_ns: 600,
        },
        TraceKind::RegimeChange => TraceEvent::RegimeChange { regime: 2 },
        TraceKind::EcnMark => TraceEvent::EcnMark {
            flow: 0,
            host: true,
        },
        TraceKind::PacketDrop => TraceEvent::PacketDrop {
            flow: 0,
            locus: DropLocus::Nic,
        },
        TraceKind::CcUpdate => TraceEvent::CcUpdate {
            flow: 0,
            cwnd_bytes: 15_000,
        },
        TraceKind::NicBacklog => TraceEvent::NicBacklog { bytes: 4096 },
        TraceKind::ChaosInject => TraceEvent::ChaosInject {
            index: 0,
            start: true,
        },
    }
}

/// Record one event per index through the public tracer path and return
/// the resulting counts.
fn counts_of(kinds: &[usize]) -> TraceCounts {
    let mut tracer = Tracer::counting(TraceFilter::all());
    for (i, &k) in kinds.iter().enumerate() {
        tracer.record(Nanos::from_nanos(i as u64 * 100), event_of(k));
    }
    tracer.counts()
}

proptest! {
    /// Merging counts is commutative: a ⊕ b == b ⊕ a, per kind and in
    /// total — the order workers join in cannot change sweep totals.
    #[test]
    fn trace_counts_merge_is_commutative(
        xs in prop::collection::vec(0usize..TraceKind::COUNT, 0..200),
        ys in prop::collection::vec(0usize..TraceKind::COUNT, 0..200),
    ) {
        let (a, b) = (counts_of(&xs), counts_of(&ys));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.total(), (xs.len() + ys.len()) as u64);
    }

    /// The empty counts are a two-sided identity for merge.
    #[test]
    fn trace_counts_merge_identity(
        xs in prop::collection::vec(0usize..TraceKind::COUNT, 0..200),
    ) {
        let a = counts_of(&xs);
        let mut left = TraceCounts::default();
        left.merge(&a);
        prop_assert_eq!(left, a);
        let mut right = a;
        right.merge(&TraceCounts::default());
        prop_assert_eq!(right, a);
    }

    /// Merging per-worker counts equals counting every event in one
    /// tracer — the parallel sweep sees exactly what a serial run would.
    #[test]
    fn trace_counts_merge_matches_single_tracer(
        xs in prop::collection::vec(0usize..TraceKind::COUNT, 0..200),
        ys in prop::collection::vec(0usize..TraceKind::COUNT, 0..200),
    ) {
        let mut merged = counts_of(&xs);
        merged.merge(&counts_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let serial = counts_of(&all);
        prop_assert_eq!(merged, serial);
        for kind in TraceKind::ALL {
            prop_assert_eq!(merged.of(kind), serial.of(kind));
        }
    }
}
