//! # hostcc-trace
//!
//! Structured event tracing, Chrome-trace/Perfetto export, and sim-rate
//! profiling for the hostCC simulation stack.
//!
//! The pieces:
//!
//! * [`TraceEvent`] / [`TraceKind`] — the closed taxonomy of observable
//!   state changes: PCIe credit stalls and grants, IIO occupancy samples,
//!   DDIO eviction changes, MBA level requests and maturations, `I_S`/`B_S`
//!   signal reads, hostCC regime transitions, ECN marks, packet drops,
//!   congestion-window updates, and NIC backlog samples.
//! * [`Tracer`] — a bounded ring buffer of [`TraceRecord`]s plus
//!   deterministic per-kind [`TraceCounts`], behind a [`TraceFilter`].
//!   [`Tracer::counting`] gives a ring-less counting-only mode for
//!   experiment sweeps, and [`TraceCounts::merge`] folds per-worker counts
//!   together deterministically at join time.
//! * [`TraceHandle`] — the cloneable handle instrumented components hold.
//!   The disabled handle is a single `Option` check and never constructs
//!   the event, so un-traced runs pay (and change) nothing.
//! * [`write_chrome_trace`] / [`write_jsonl`] — exporters: a Chrome
//!   trace-event JSON document (open in [Perfetto](https://ui.perfetto.dev)
//!   or `chrome://tracing`) with one track per component category, and a
//!   line-per-event JSONL dump for `jq`/scripts.
//! * [`SimRateProfiler`] / [`SimRateReport`] — wall-clock simulation-rate
//!   measurement piggybacked on the event queue's popped counter.
//!
//! ## Example
//!
//! ```
//! use hostcc_sim::Nanos;
//! use hostcc_trace::{
//!     write_chrome_trace, TraceEvent, TraceFilter, TraceHandle, Tracer,
//! };
//!
//! let handle = TraceHandle::new(Tracer::new(1024, TraceFilter::all()));
//! // Components emit through their (cloned) handle:
//! handle.emit(Nanos::from_micros(1), || TraceEvent::IioOccupancy {
//!     cachelines: 64.0,
//! });
//! assert_eq!(handle.counts().unwrap().total(), 1);
//!
//! let mut json = Vec::new();
//! handle
//!     .with(|t| write_chrome_trace(t, &mut json))
//!     .unwrap()
//!     .unwrap();
//! assert!(String::from_utf8(json).unwrap().contains("iio_occupancy_cl"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod profile;
mod tracer;

pub use event::{DropLocus, TraceEvent, TraceKind};
pub use export::{write_chrome_trace, write_jsonl};
pub use profile::{SimRateProfiler, SimRateReport};
pub use tracer::{
    TraceCounts, TraceFilter, TraceHandle, TraceRecord, Tracer, DEFAULT_TRACE_CAPACITY,
};
