//! The trace event taxonomy: every observable state change in the stack.
//!
//! One enum, not a trait object: events are tiny `Copy` values constructed
//! on the hot path only when tracing is enabled, and the closed set keeps
//! the per-kind counters and the export track mapping exhaustive.

/// Where a packet was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropLocus {
    /// Tail-dropped at the receiver NIC SRAM (host congestion).
    Nic,
    /// Tail-dropped at the switch egress buffer (fabric congestion).
    Switch,
    /// Injected by the fault model (corruption / random loss).
    Fault,
}

impl DropLocus {
    /// Short identifier used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            DropLocus::Nic => "nic",
            DropLocus::Switch => "switch",
            DropLocus::Fault => "fault",
        }
    }
}

/// The kind of a [`TraceEvent`] — the unit of filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// PCIe credits exhausted: the NIC cannot stream (domino stage 3).
    PcieStall = 0,
    /// PCIe credits available again after a stall.
    PcieGrant = 1,
    /// IIO buffer occupancy sample (the raw `I_S` ground truth).
    IioOccupancy = 2,
    /// DDIO eviction-fraction change (LLC pollution by host traffic).
    DdioEviction = 3,
    /// hostCC requested an MBA level (MSR write issued).
    MbaRequest = 4,
    /// An MBA MSR write matured: the level now in effect changed.
    MbaEffective = 5,
    /// A completed signal-sampler read: smoothed `I_S`/`B_S` + read cost.
    SignalSample = 6,
    /// The hostCC controller moved to a different Fig-6 regime.
    RegimeChange = 7,
    /// A packet was CE-marked (by the host echo or the switch AQM).
    EcnMark = 8,
    /// A packet was dropped.
    PacketDrop = 9,
    /// A flow's congestion window changed.
    CcUpdate = 10,
    /// Receiver NIC buffer backlog sample.
    NicBacklog = 11,
    /// A chaos-timeline injection fired (fault applied or reverted).
    ChaosInject = 12,
}

impl TraceKind {
    /// Number of kinds (array sizing for counters).
    pub const COUNT: usize = 13;

    /// All kinds, in discriminant order.
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::PcieStall,
        TraceKind::PcieGrant,
        TraceKind::IioOccupancy,
        TraceKind::DdioEviction,
        TraceKind::MbaRequest,
        TraceKind::MbaEffective,
        TraceKind::SignalSample,
        TraceKind::RegimeChange,
        TraceKind::EcnMark,
        TraceKind::PacketDrop,
        TraceKind::CcUpdate,
        TraceKind::NicBacklog,
        TraceKind::ChaosInject,
    ];

    /// The export category (one Perfetto track per category). This is also
    /// the vocabulary of `--trace-filter`.
    pub fn category(self) -> &'static str {
        match self {
            TraceKind::PcieStall | TraceKind::PcieGrant => "pcie",
            TraceKind::IioOccupancy => "iio",
            TraceKind::DdioEviction => "ddio",
            TraceKind::MbaRequest | TraceKind::MbaEffective => "mba",
            TraceKind::SignalSample => "signal",
            TraceKind::RegimeChange | TraceKind::CcUpdate => "cc",
            TraceKind::EcnMark => "ecn",
            TraceKind::PacketDrop => "drop",
            TraceKind::NicBacklog => "nic",
            TraceKind::ChaosInject => "chaos",
        }
    }

    /// Event name as shown on the timeline.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::PcieStall => "pcie_credit_stall",
            TraceKind::PcieGrant => "pcie_credit_grant",
            TraceKind::IioOccupancy => "iio_occupancy_cl",
            TraceKind::DdioEviction => "ddio_eviction_fraction",
            TraceKind::MbaRequest => "mba_level_request",
            TraceKind::MbaEffective => "mba_level_effective",
            TraceKind::SignalSample => "signal_sample",
            TraceKind::RegimeChange => "hostcc_regime",
            TraceKind::EcnMark => "ecn_mark",
            TraceKind::PacketDrop => "packet_drop",
            TraceKind::CcUpdate => "cc_cwnd",
            TraceKind::NicBacklog => "nic_backlog_bytes",
            TraceKind::ChaosInject => "chaos_inject",
        }
    }

    /// All category names, deduplicated, in track order.
    pub fn categories() -> &'static [&'static str] {
        &[
            "nic", "pcie", "iio", "ddio", "mba", "signal", "cc", "ecn", "drop", "chaos",
        ]
    }
}

/// A structured trace event. Timestamps live in the enclosing
/// [`TraceRecord`](crate::TraceRecord); the event itself is pure payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// PCIe credits exhausted while the NIC still holds `backlog_bytes`.
    PcieCreditStall {
        /// NIC buffer backlog at stall onset.
        backlog_bytes: u64,
    },
    /// Credits replenished after a stall lasting `stalled_ns`.
    PcieCreditGrant {
        /// How long the stall lasted.
        stalled_ns: u64,
    },
    /// Instantaneous IIO buffer occupancy.
    IioOccupancy {
        /// Occupancy in cachelines (the paper's `I_S` unit).
        cachelines: f64,
    },
    /// The DDIO eviction fraction moved.
    DdioEviction {
        /// Fraction of DMA traffic falling through to memory writes.
        fraction: f64,
    },
    /// hostCC issued an MBA MSR write.
    MbaRequest {
        /// Level requested (0..=4).
        level: u8,
    },
    /// An MBA write matured; this level is now applied to the cores.
    MbaEffective {
        /// Level now in effect (0..=4).
        level: u8,
    },
    /// A completed signal sample.
    SignalSample {
        /// Smoothed IIO occupancy `I_S`.
        is: f64,
        /// Smoothed PCIe bandwidth `B_S` in Gbps.
        bs_gbps: f64,
        /// Total MSR read cost for this sample (both reads).
        read_ns: u64,
    },
    /// The controller changed regime (Fig 6).
    RegimeChange {
        /// Regime index 1..=4.
        regime: u8,
    },
    /// A packet was CE-marked.
    EcnMark {
        /// Flow the packet belongs to.
        flow: u32,
        /// True when the host echo marked it; false for the switch AQM.
        host: bool,
    },
    /// A packet was dropped.
    PacketDrop {
        /// Flow the packet belonged to (`u32::MAX` when unknown).
        flow: u32,
        /// Where it was lost.
        locus: DropLocus,
    },
    /// A flow's congestion window changed.
    CcUpdate {
        /// The flow.
        flow: u32,
        /// New congestion window in bytes.
        cwnd_bytes: u64,
    },
    /// Receiver NIC buffer backlog.
    NicBacklog {
        /// Buffered bytes.
        bytes: u64,
    },
    /// A chaos-timeline injection fired.
    ChaosInject {
        /// Index of the chaos event within its timeline.
        index: u32,
        /// True when this injection starts the fault window; false when it
        /// reverts it.
        start: bool,
    },
}

impl TraceEvent {
    /// The event's kind.
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::PcieCreditStall { .. } => TraceKind::PcieStall,
            TraceEvent::PcieCreditGrant { .. } => TraceKind::PcieGrant,
            TraceEvent::IioOccupancy { .. } => TraceKind::IioOccupancy,
            TraceEvent::DdioEviction { .. } => TraceKind::DdioEviction,
            TraceEvent::MbaRequest { .. } => TraceKind::MbaRequest,
            TraceEvent::MbaEffective { .. } => TraceKind::MbaEffective,
            TraceEvent::SignalSample { .. } => TraceKind::SignalSample,
            TraceEvent::RegimeChange { .. } => TraceKind::RegimeChange,
            TraceEvent::EcnMark { .. } => TraceKind::EcnMark,
            TraceEvent::PacketDrop { .. } => TraceKind::PacketDrop,
            TraceEvent::CcUpdate { .. } => TraceKind::CcUpdate,
            TraceEvent::NicBacklog { .. } => TraceKind::NicBacklog,
            TraceEvent::ChaosInject { .. } => TraceKind::ChaosInject,
        }
    }

    /// The event's export category.
    pub fn category(&self) -> &'static str {
        self.kind().category()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_all() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }

    #[test]
    fn every_kind_has_a_category_and_name() {
        for k in TraceKind::ALL {
            assert!(!k.category().is_empty());
            assert!(!k.name().is_empty());
            assert!(
                TraceKind::categories().contains(&k.category()),
                "{} missing from categories()",
                k.category()
            );
        }
    }

    #[test]
    fn event_kind_mapping() {
        assert_eq!(
            TraceEvent::IioOccupancy { cachelines: 65.0 }.kind(),
            TraceKind::IioOccupancy
        );
        assert_eq!(
            TraceEvent::PacketDrop {
                flow: 3,
                locus: DropLocus::Nic
            }
            .category(),
            "drop"
        );
    }
}
