//! Trace exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and compact JSONL for scripted analysis.
//!
//! JSON is emitted by hand: every name in the taxonomy is a static
//! identifier and every value a finite number or fixed keyword, so the
//! writer needs no escaping and the workspace needs no serializer
//! dependency (tier-1 verify runs without registry access).

use std::io::{self, Write};

use crate::event::{TraceEvent, TraceKind};
use crate::tracer::Tracer;

/// Track (Chrome `tid`) for a category: position in
/// [`TraceKind::categories`], 1-based.
fn tid(category: &str) -> usize {
    TraceKind::categories()
        .iter()
        .position(|&c| c == category)
        .map(|i| i + 1)
        .unwrap_or(0)
}

fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Write the full Chrome trace-event JSON document.
///
/// Layout: one process (`pid` 1) named `hostcc-sim`, one thread per event
/// category, counter events (`ph: "C"`) for continuously-valued state and
/// thread-scoped instants (`ph: "i"`) for discrete occurrences.
pub fn write_chrome_trace<W: Write>(tracer: &Tracer, w: &mut W) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    write!(
        w,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"hostcc-sim\"}}}}"
    )?;
    for (i, cat) in TraceKind::categories().iter().enumerate() {
        write!(
            w,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            cat
        )?;
        write!(
            w,
            ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"sort_index\":{}}}}}",
            i + 1,
            i + 1
        )?;
    }
    for rec in tracer.records() {
        let kind = rec.event.kind();
        let (ph, name, args) = render_event(&rec.event);
        write!(
            w,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",{}\"ts\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
            name,
            kind.category(),
            ph,
            if ph == "i" { "\"s\":\"t\"," } else { "" },
            ts_us(rec.at.as_nanos()),
            tid(kind.category()),
            args,
        )?;
    }
    writeln!(w, "\n]}}")?;
    Ok(())
}

/// Phase, display name and rendered `args` body for one event.
fn render_event(ev: &TraceEvent) -> (&'static str, String, String) {
    let kind = ev.kind();
    match *ev {
        TraceEvent::PcieCreditStall { backlog_bytes } => (
            "i",
            kind.name().to_string(),
            format!("\"backlog_bytes\":{backlog_bytes}"),
        ),
        TraceEvent::PcieCreditGrant { stalled_ns } => (
            "i",
            kind.name().to_string(),
            format!("\"stalled_ns\":{stalled_ns}"),
        ),
        TraceEvent::IioOccupancy { cachelines } => (
            "C",
            kind.name().to_string(),
            format!("\"cachelines\":{cachelines}"),
        ),
        TraceEvent::DdioEviction { fraction } => (
            "C",
            kind.name().to_string(),
            format!("\"fraction\":{fraction}"),
        ),
        TraceEvent::MbaRequest { level } => {
            ("i", kind.name().to_string(), format!("\"level\":{level}"))
        }
        TraceEvent::MbaEffective { level } => {
            ("C", kind.name().to_string(), format!("\"level\":{level}"))
        }
        TraceEvent::SignalSample {
            is,
            bs_gbps,
            read_ns,
        } => (
            "C",
            "hostcc_signals".to_string(),
            format!("\"is\":{is},\"bs_gbps\":{bs_gbps},\"read_ns\":{read_ns}"),
        ),
        TraceEvent::RegimeChange { regime } => {
            ("C", kind.name().to_string(), format!("\"regime\":{regime}"))
        }
        TraceEvent::EcnMark { flow, host } => (
            "i",
            kind.name().to_string(),
            format!(
                "\"flow\":{flow},\"by\":\"{}\"",
                if host { "host" } else { "switch" }
            ),
        ),
        TraceEvent::PacketDrop { flow, locus } => (
            "i",
            kind.name().to_string(),
            format!("\"flow\":{flow},\"locus\":\"{}\"", locus.as_str()),
        ),
        TraceEvent::CcUpdate { flow, cwnd_bytes } => (
            "C",
            format!("cwnd_flow{flow}"),
            format!("\"bytes\":{cwnd_bytes}"),
        ),
        TraceEvent::NicBacklog { bytes } => {
            ("C", kind.name().to_string(), format!("\"bytes\":{bytes}"))
        }
        TraceEvent::ChaosInject { index, start } => (
            "i",
            kind.name().to_string(),
            format!(
                "\"index\":{index},\"phase\":\"{}\"",
                if start { "start" } else { "end" }
            ),
        ),
    }
}

/// Write one JSON object per line: `{"t":<ns>,"kind":…,"cat":…,<payload>}`.
/// Grep/jq-friendly; field names match the Chrome export's `args`.
pub fn write_jsonl<W: Write>(tracer: &Tracer, w: &mut W) -> io::Result<()> {
    for rec in tracer.records() {
        let kind = rec.event.kind();
        let (_, _, args) = render_event(&rec.event);
        writeln!(
            w,
            "{{\"t\":{},\"kind\":\"{}\",\"cat\":\"{}\",{}}}",
            rec.at.as_nanos(),
            kind.name(),
            kind.category(),
            args,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropLocus;
    use crate::tracer::TraceFilter;
    use hostcc_sim::Nanos;

    /// Minimal recursive-descent JSON syntax checker — enough to assert
    /// the exporters emit well-formed documents without a JSON dependency.
    mod json {
        pub fn validate(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0;
            skip_ws(b, &mut i);
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing garbage at byte {i}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, "true"),
                Some(b'f') => literal(b, i, "false"),
                Some(b'n') => literal(b, i, "null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at byte {i}")),
            }
        }

        fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
            if b[*i..].starts_with(lit.as_bytes()) {
                *i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {i}"))
            }
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            let tok = std::str::from_utf8(&b[start..*i]).unwrap();
            tok.parse::<f64>()
                .map(|_| ())
                .map_err(|_| format!("bad number '{tok}' at byte {start}"))
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // opening quote
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
    }

    fn populated_tracer() -> Tracer {
        let mut t = Tracer::new(1024, TraceFilter::all());
        t.record(
            Nanos::from_nanos(100),
            TraceEvent::IioOccupancy { cachelines: 65.25 },
        );
        t.record(
            Nanos::from_nanos(250),
            TraceEvent::PcieCreditStall {
                backlog_bytes: 8192,
            },
        );
        t.record(
            Nanos::from_nanos(900),
            TraceEvent::PcieCreditGrant { stalled_ns: 650 },
        );
        t.record(Nanos::from_micros(2), TraceEvent::MbaRequest { level: 2 });
        t.record(
            Nanos::from_micros(24),
            TraceEvent::MbaEffective { level: 2 },
        );
        t.record(
            Nanos::from_micros(3),
            TraceEvent::SignalSample {
                is: 80.5,
                bs_gbps: 43.2,
                read_ns: 1200,
            },
        );
        t.record(
            Nanos::from_micros(3),
            TraceEvent::RegimeChange { regime: 3 },
        );
        t.record(
            Nanos::from_micros(4),
            TraceEvent::EcnMark {
                flow: 1,
                host: true,
            },
        );
        t.record(
            Nanos::from_micros(5),
            TraceEvent::PacketDrop {
                flow: 2,
                locus: DropLocus::Nic,
            },
        );
        t.record(
            Nanos::from_micros(6),
            TraceEvent::CcUpdate {
                flow: 1,
                cwnd_bytes: 64000,
            },
        );
        t.record(
            Nanos::from_micros(7),
            TraceEvent::NicBacklog { bytes: 123456 },
        );
        t.record(
            Nanos::from_micros(8),
            TraceEvent::DdioEviction { fraction: 0.375 },
        );
        t.record(
            Nanos::from_micros(10),
            TraceEvent::ChaosInject {
                index: 0,
                start: true,
            },
        );
        t
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_categories() {
        let t = populated_tracer();
        let mut out = Vec::new();
        write_chrome_trace(&t, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        json::validate(&s).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{s}"));
        for cat in TraceKind::categories() {
            assert!(
                s.contains(&format!("\"cat\":\"{cat}\"")),
                "category {cat} missing from export"
            );
        }
        assert!(s.contains("\"ph\":\"C\""), "counter events present");
        assert!(s.contains("\"ph\":\"i\""), "instant events present");
        assert!(s.contains("\"ts\":2.000"), "µs timestamps");
    }

    #[test]
    fn jsonl_lines_are_each_valid() {
        let t = populated_tracer();
        let mut out = Vec::new();
        write_jsonl(&t, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), t.len());
        for line in lines {
            json::validate(line).unwrap_or_else(|e| panic!("invalid JSONL line: {e}\n{line}"));
        }
        assert!(s.contains("\"kind\":\"packet_drop\""));
        assert!(s.contains("\"locus\":\"nic\""));
    }

    #[test]
    fn empty_tracer_still_exports_valid_documents() {
        let t = Tracer::new(4, TraceFilter::all());
        let mut out = Vec::new();
        write_chrome_trace(&t, &mut out).unwrap();
        json::validate(std::str::from_utf8(&out).unwrap()).unwrap();
        let mut out = Vec::new();
        write_jsonl(&t, &mut out).unwrap();
        assert!(out.is_empty());
    }
}
