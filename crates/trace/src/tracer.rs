//! The tracer: a bounded ring buffer of timestamped events behind a
//! cloneable handle that is a no-op when tracing is disabled.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use hostcc_sim::Nanos;

use crate::event::{TraceEvent, TraceKind};

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulation time the event occurred.
    pub at: Nanos,
    /// The event.
    pub event: TraceEvent,
}

/// Which event kinds are recorded. Parsed from the `--trace-filter`
/// vocabulary of category names (see [`TraceKind::category`]) and event
/// kind-name prefixes (see [`TraceKind::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    mask: u32,
}

impl Default for TraceFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl TraceFilter {
    /// Record everything.
    pub fn all() -> Self {
        TraceFilter {
            mask: (1u32 << TraceKind::COUNT) - 1,
        }
    }

    /// Record nothing (useful as a parse accumulator).
    pub fn none() -> Self {
        TraceFilter { mask: 0 }
    }

    /// Enable every kind in `category`.
    pub fn with_category(mut self, category: &str) -> Self {
        for k in TraceKind::ALL {
            if k.category() == category {
                self.mask |= 1 << k as u32;
            }
        }
        self
    }

    /// Parse a comma-separated selector list; `"all"` (or an empty string)
    /// selects everything. Each part is either a category name
    /// (`"pcie,mba,cc"`) or a prefix of an event kind name
    /// (`"pcie_credit"`, `"mba_level_request"`). A part that selects zero
    /// kinds is an error that lists the whole vocabulary — a
    /// silently-ignored typo would masquerade as "no events of that kind".
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "all" {
            return Ok(Self::all());
        }
        let mut f = Self::none();
        for part in spec.split(',') {
            let part = part.trim();
            let mask = if part.is_empty() {
                0 // "pcie,,cc": an empty prefix would select everything.
            } else if TraceKind::categories().contains(&part) {
                Self::none().with_category(part).mask
            } else {
                TraceKind::ALL
                    .iter()
                    .filter(|k| k.name().starts_with(part))
                    .fold(0, |m, &k| m | 1 << k as u32)
            };
            if mask == 0 {
                return Err(format!(
                    "'{part}' selects no trace kinds (categories: {}; kinds: {})",
                    TraceKind::categories().join(", "),
                    TraceKind::ALL.map(TraceKind::name).join(", ")
                ));
            }
            f.mask |= mask;
        }
        Ok(f)
    }

    /// Whether `kind` passes the filter.
    #[inline]
    pub fn wants(&self, kind: TraceKind) -> bool {
        self.mask & (1 << kind as u32) != 0
    }
}

/// Deterministic per-kind event totals: everything *offered* to the tracer
/// (filter-passing), whether or not the ring still holds it. Suitable for
/// test assertions — unlike wall-clock profiling, counts are exactly
/// reproducible for a given scenario and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounts {
    per_kind: [u64; TraceKind::COUNT],
    /// Records evicted from the ring after it filled.
    pub overflowed: u64,
}

impl TraceCounts {
    /// Events counted for `kind`.
    pub fn of(&self, kind: TraceKind) -> u64 {
        self.per_kind[kind as usize]
    }

    /// Total events across all kinds.
    pub fn total(&self) -> u64 {
        self.per_kind.iter().sum()
    }

    /// Total events in `category`.
    pub fn of_category(&self, category: &str) -> u64 {
        TraceKind::ALL
            .iter()
            .filter(|k| k.category() == category)
            .map(|&k| self.of(k))
            .sum()
    }

    /// Categories with at least one event, in track order.
    pub fn nonempty_categories(&self) -> Vec<&'static str> {
        TraceKind::categories()
            .iter()
            .copied()
            .filter(|c| self.of_category(c) > 0)
            .collect()
    }

    /// Iterate `(kind, count)` for kinds with at least one event.
    pub fn iter(&self) -> impl Iterator<Item = (TraceKind, u64)> + '_ {
        TraceKind::ALL
            .into_iter()
            .map(|k| (k, self.of(k)))
            .filter(|&(_, c)| c > 0)
    }

    /// Fold another count set into this one (per-kind totals and the
    /// overflow count both add). This is how a parallel experiment sweep
    /// combines the per-worker tracers at join time: merged counts are
    /// order-independent, so the sweep totals stay deterministic no matter
    /// which worker ran which cell.
    pub fn merge(&mut self, other: &TraceCounts) {
        for (a, b) in self.per_kind.iter_mut().zip(other.per_kind.iter()) {
            *a += b;
        }
        self.overflowed += other.overflowed;
    }

    fn bump(&mut self, kind: TraceKind) {
        self.per_kind[kind as usize] += 1;
    }
}

/// The event sink: bounded ring buffer + per-kind counters.
///
/// When the ring fills, the oldest record is evicted (and counted in
/// [`TraceCounts::overflowed`]): for congestion debugging the most recent
/// window is the interesting one.
#[derive(Debug)]
pub struct Tracer {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    filter: TraceFilter,
    counts: TraceCounts,
}

/// Default ring capacity: enough for ~100 ms of fully-instrumented
/// simulation at the default tick without exceeding tens of MB.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

impl Tracer {
    /// A tracer holding at most `capacity` records, recording only kinds
    /// passing `filter`.
    pub fn new(capacity: usize, filter: TraceFilter) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        Tracer {
            buf: VecDeque::with_capacity(capacity.min(65536)),
            capacity,
            filter,
            counts: TraceCounts::default(),
        }
    }

    /// A counting-only tracer: per-kind [`TraceCounts`] are maintained but
    /// no records are retained (and nothing ever counts as overflowed).
    /// This is the mode experiment sweeps run every cell under — the counts
    /// are deterministic and cheap, while retaining a ring per cell would
    /// cost memory proportional to the grid size.
    pub fn counting(filter: TraceFilter) -> Self {
        Tracer {
            buf: VecDeque::new(),
            capacity: 0,
            filter,
            counts: TraceCounts::default(),
        }
    }

    /// Record an event at `at` (subject to the filter).
    pub fn record(&mut self, at: Nanos, event: TraceEvent) {
        let kind = event.kind();
        if !self.filter.wants(kind) {
            return;
        }
        self.counts.bump(kind);
        if self.capacity == 0 {
            return; // counting-only mode: no ring to fill.
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.counts.overflowed += 1;
        }
        self.buf.push_back(TraceRecord { at, event });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The deterministic per-kind totals.
    pub fn counts(&self) -> TraceCounts {
        self.counts
    }

    /// The active filter.
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }
}

/// A cheap, cloneable reference to a shared [`Tracer`] — or nothing.
///
/// Every instrumented component holds one. The disabled handle (the
/// [`Default`]) reduces [`TraceHandle::emit`] to a single `Option`
/// discriminant test and never constructs the event, so instrumentation
/// costs nothing on un-traced runs; the simulation stays single-threaded,
/// hence `Rc<RefCell<…>>` rather than locks.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Rc<RefCell<Tracer>>>);

impl TraceHandle {
    /// The no-op handle.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A handle owning a fresh tracer; clones share it.
    pub fn new(tracer: Tracer) -> Self {
        TraceHandle(Some(Rc::new(RefCell::new(tracer))))
    }

    /// Whether events are being collected at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event built by `f` at time `at`. `f` runs only when the
    /// handle is enabled; filtering happens inside the tracer.
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, at: Nanos, f: F) {
        if let Some(t) = &self.0 {
            t.borrow_mut().record(at, f());
        }
    }

    /// Run `f` against the shared tracer, if any.
    pub fn with<R>(&self, f: impl FnOnce(&Tracer) -> R) -> Option<R> {
        self.0.as_ref().map(|t| f(&t.borrow()))
    }

    /// Deterministic counts, if enabled.
    pub fn counts(&self) -> Option<TraceCounts> {
        self.with(Tracer::counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropLocus;

    fn ev(cl: f64) -> TraceEvent {
        TraceEvent::IioOccupancy { cachelines: cl }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(3, TraceFilter::all());
        for i in 0..5 {
            t.record(Nanos::from_nanos(i), ev(i as f64));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.counts().overflowed, 2);
        assert_eq!(t.counts().of(TraceKind::IioOccupancy), 5);
        let first = t.records().next().unwrap();
        assert_eq!(first.at, Nanos::from_nanos(2), "oldest two evicted");
    }

    #[test]
    fn filter_drops_unwanted_kinds() {
        let f = TraceFilter::parse("pcie,drop").unwrap();
        let mut t = Tracer::new(16, f);
        t.record(Nanos::ZERO, ev(1.0)); // iio: filtered out
        t.record(
            Nanos::ZERO,
            TraceEvent::PacketDrop {
                flow: 0,
                locus: DropLocus::Nic,
            },
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.counts().of(TraceKind::IioOccupancy), 0);
        assert_eq!(t.counts().of(TraceKind::PacketDrop), 1);
    }

    #[test]
    fn filter_parse_rejects_unknown() {
        assert!(TraceFilter::parse("pcie,bogus").is_err());
        assert_eq!(TraceFilter::parse("all").unwrap(), TraceFilter::all());
        assert_eq!(TraceFilter::parse("").unwrap(), TraceFilter::all());
    }

    #[test]
    fn filter_parse_accepts_kind_name_prefixes() {
        // A prefix narrower than a category selects just the kinds under it.
        let f = TraceFilter::parse("pcie_credit").unwrap();
        assert!(f.wants(TraceKind::PcieStall) && f.wants(TraceKind::PcieGrant));
        assert!(!f.wants(TraceKind::IioOccupancy));
        let one = TraceFilter::parse("mba_level_request").unwrap();
        assert!(one.wants(TraceKind::MbaRequest) && !one.wants(TraceKind::MbaEffective));
        // Duplicate parts are idempotent, not errors.
        assert_eq!(
            TraceFilter::parse("pcie,pcie").unwrap(),
            TraceFilter::parse("pcie").unwrap()
        );
    }

    #[test]
    fn filter_parse_rejects_zero_match_prefixes_with_vocabulary() {
        // A prefix that matches zero kinds must not silently select nothing.
        for bad in ["pcie_credit_stalls", "drop_", "pcie,,cc"] {
            let err = TraceFilter::parse(bad).unwrap_err();
            assert!(err.contains("selects no trace kinds"), "{bad}: {err}");
            assert!(err.contains("categories: "), "{bad}: {err}");
            assert!(err.contains("kinds: "), "{bad}: {err}");
        }
    }

    #[test]
    fn filter_vocabulary_is_pinned() {
        // The `--trace-filter` vocabulary is part of the CLI contract:
        // renaming a category or kind is a breaking change, so pin both.
        assert_eq!(
            TraceKind::categories(),
            &["nic", "pcie", "iio", "ddio", "mba", "signal", "cc", "ecn", "drop", "chaos"]
        );
        assert_eq!(
            TraceKind::ALL.map(TraceKind::name),
            [
                "pcie_credit_stall",
                "pcie_credit_grant",
                "iio_occupancy_cl",
                "ddio_eviction_fraction",
                "mba_level_request",
                "mba_level_effective",
                "signal_sample",
                "hostcc_regime",
                "ecn_mark",
                "packet_drop",
                "cc_cwnd",
                "nic_backlog_bytes",
                "chaos_inject",
            ]
        );
        // Every name must remain resolvable through parse, exactly one kind
        // each — so the error message's vocabulary is always accurate.
        for k in TraceKind::ALL {
            let f = TraceFilter::parse(k.name()).unwrap();
            assert!(f.wants(k), "{}", k.name());
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        let mut built = false;
        h.emit(Nanos::ZERO, || {
            built = true;
            ev(0.0)
        });
        assert!(!built, "event closure must not run when disabled");
        assert!(h.counts().is_none());
    }

    #[test]
    fn clones_share_one_ring() {
        let h = TraceHandle::new(Tracer::new(16, TraceFilter::all()));
        let h2 = h.clone();
        h.emit(Nanos::from_nanos(1), || ev(1.0));
        h2.emit(Nanos::from_nanos(2), || ev(2.0));
        assert_eq!(h.with(|t| t.len()), Some(2));
    }

    #[test]
    fn counting_mode_counts_without_retaining() {
        let mut t = Tracer::counting(TraceFilter::all());
        for i in 0..100 {
            t.record(Nanos::from_nanos(i), ev(i as f64));
        }
        assert_eq!(t.counts().of(TraceKind::IioOccupancy), 100);
        assert_eq!(
            t.counts().overflowed,
            0,
            "nothing retained, nothing evicted"
        );
        assert!(t.is_empty());
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn counting_mode_still_filters() {
        let mut t = Tracer::counting(TraceFilter::parse("drop").unwrap());
        t.record(Nanos::ZERO, ev(1.0)); // iio: filtered out
        t.record(
            Nanos::ZERO,
            TraceEvent::PacketDrop {
                flow: 0,
                locus: DropLocus::Nic,
            },
        );
        assert_eq!(t.counts().total(), 1);
    }

    #[test]
    fn merge_adds_per_kind_and_overflow() {
        let mut a = Tracer::new(1, TraceFilter::all());
        a.record(Nanos::ZERO, ev(1.0));
        a.record(Nanos::ZERO, ev(2.0)); // evicts the first
        let mut b = Tracer::counting(TraceFilter::all());
        b.record(Nanos::ZERO, TraceEvent::MbaRequest { level: 2 });

        let mut total = a.counts();
        total.merge(&b.counts());
        assert_eq!(total.of(TraceKind::IioOccupancy), 2);
        assert_eq!(total.of(TraceKind::MbaRequest), 1);
        assert_eq!(total.overflowed, 1);
        assert_eq!(total.total(), 3);

        // Merge is commutative: the sweep's join order cannot matter.
        let mut flipped = b.counts();
        flipped.merge(&a.counts());
        assert_eq!(flipped, total);
    }

    #[test]
    fn counts_by_category() {
        let h = TraceHandle::new(Tracer::new(16, TraceFilter::all()));
        h.emit(Nanos::ZERO, || TraceEvent::MbaRequest { level: 1 });
        h.emit(Nanos::ZERO, || TraceEvent::MbaEffective { level: 1 });
        let c = h.counts().unwrap();
        assert_eq!(c.of_category("mba"), 2);
        assert_eq!(c.nonempty_categories(), vec!["mba"]);
        assert_eq!(c.total(), 2);
    }
}
