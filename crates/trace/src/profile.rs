//! Sim-rate profiling: how fast is the simulator simulating?
//!
//! Piggybacks on the [`EventQueue`](hostcc_sim::EventQueue)'s existing
//! popped counter — the profiler just snapshots it (plus the wall clock and
//! the simulated clock) at start and finish. Wall-clock numbers are
//! intentionally kept *out* of `RunResult`: they vary run to run, and
//! results must stay bit-identical for a given scenario and seed.

use std::time::Instant;

use hostcc_sim::Nanos;

/// An in-flight measurement; [`SimRateProfiler::finish`] closes it.
#[derive(Debug, Clone)]
pub struct SimRateProfiler {
    wall_start: Instant,
    events_start: u64,
    sim_start: Nanos,
}

impl SimRateProfiler {
    /// Snapshot the three clocks at the start of a run. `events_processed`
    /// is the queue's popped counter, `sim_now` the simulated time.
    pub fn start(events_processed: u64, sim_now: Nanos) -> Self {
        SimRateProfiler {
            wall_start: Instant::now(),
            events_start: events_processed,
            sim_start: sim_now,
        }
    }

    /// Close the measurement with the counters' final values.
    pub fn finish(self, events_processed: u64, sim_now: Nanos) -> SimRateReport {
        SimRateReport {
            wall_secs: self.wall_start.elapsed().as_secs_f64(),
            events: events_processed.saturating_sub(self.events_start),
            sim_ns: sim_now.as_nanos().saturating_sub(self.sim_start.as_nanos()),
        }
    }
}

/// The closed measurement: wall time spent, events popped, sim time covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimRateReport {
    /// Wall-clock seconds elapsed.
    pub wall_secs: f64,
    /// Events popped from the queue during the measurement.
    pub events: u64,
    /// Simulated nanoseconds covered.
    pub sim_ns: u64,
}

impl SimRateReport {
    /// Events popped per wall-clock second.
    ///
    /// All rate accessors share the same degenerate-measurement rule:
    /// any zero (or negative, for the float) denominator yields `0.0`
    /// rather than an `inf`/`NaN` that would poison downstream JSON.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / self.wall_secs
    }

    /// Simulated nanoseconds advanced per wall-clock second — the
    /// speed-of-simulation figure the BENCH trajectory tracks (1e9 means
    /// real time).
    pub fn sim_ns_per_wall_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.sim_ns as f64 / self.wall_secs
    }

    /// Wall-clock microseconds spent per simulated millisecond — the
    /// slowdown factor ×1000 (1000 here means real time).
    pub fn wall_us_per_sim_ms(&self) -> f64 {
        if self.sim_ns == 0 || self.wall_secs <= 0.0 {
            return 0.0;
        }
        (self.wall_secs * 1e6) / (self.sim_ns as f64 / 1e6)
    }

    /// The one JSON emission point for sim-rate blocks (the sweep
    /// manifest sidecar and the BENCH workload `rate` block both call
    /// this): raw counters plus the derived rates, serde-free.
    ///
    /// `wall_secs` and everything derived from it are wall-clock data —
    /// non-deterministic, and never part of any fingerprint.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"wall_secs\": {}, \"events\": {}, \"sim_ns\": {}, \
             \"events_per_sec\": {}, \"sim_ns_per_wall_sec\": {}, \
             \"wall_us_per_sim_ms\": {}}}",
            fmt_f64(self.wall_secs),
            self.events,
            self.sim_ns,
            fmt_f64(self.events_per_sec()),
            fmt_f64(self.sim_ns_per_wall_sec()),
            fmt_f64(self.wall_us_per_sim_ms()),
        )
    }

    /// One-line human rendering for end-of-run output.
    pub fn render(&self) -> String {
        format!(
            "sim-rate: {} events in {:.3} s wall ({:.0} ev/s), {:.3} ms simulated, {:.1} wall-us/sim-ms",
            self.events,
            self.wall_secs,
            self.events_per_sec(),
            self.sim_ns as f64 / 1e6,
            self.wall_us_per_sim_ms(),
        )
    }
}

/// Shortest round-trip float rendering; non-finite values become `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let r = SimRateReport {
            wall_secs: 2.0,
            events: 1_000_000,
            sim_ns: 4_000_000, // 4 simulated ms
        };
        assert_eq!(r.events_per_sec(), 500_000.0);
        assert_eq!(r.sim_ns_per_wall_sec(), 2_000_000.0);
        assert_eq!(r.wall_us_per_sim_ms(), 500_000.0);
        let line = r.render();
        assert!(line.contains("1000000 events"), "{line}");
        assert!(line.contains("4.000 ms simulated"), "{line}");
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let r = SimRateReport {
            wall_secs: 0.0,
            events: 0,
            sim_ns: 0,
        };
        assert_eq!(r.events_per_sec(), 0.0);
        assert_eq!(r.sim_ns_per_wall_sec(), 0.0);
        assert_eq!(r.wall_us_per_sim_ms(), 0.0);
        r.render();
        // The JSON path must emit finite numbers even for the degenerate
        // measurement (0.0, never NaN/inf/null rates).
        let json = r.to_json();
        assert!(json.contains("\"events_per_sec\": 0.0"), "{json}");
        assert!(json.contains("\"sim_ns_per_wall_sec\": 0.0"), "{json}");
    }

    #[test]
    fn json_block_carries_raw_counters_and_derived_rates() {
        let r = SimRateReport {
            wall_secs: 0.5,
            events: 200,
            sim_ns: 1_000_000,
        };
        let json = r.to_json();
        assert!(json.contains("\"wall_secs\": 0.5"), "{json}");
        assert!(json.contains("\"events\": 200"), "{json}");
        assert!(json.contains("\"sim_ns\": 1000000"), "{json}");
        assert!(json.contains("\"events_per_sec\": 400.0"), "{json}");
        assert!(
            json.contains("\"sim_ns_per_wall_sec\": 2000000.0"),
            "{json}"
        );
    }

    #[test]
    fn profiler_counts_deltas() {
        let p = SimRateProfiler::start(100, Nanos::from_micros(5));
        let r = p.finish(350, Nanos::from_micros(9));
        assert_eq!(r.events, 250);
        assert_eq!(r.sim_ns, 4_000);
        assert!(r.wall_secs >= 0.0);
    }
}
