//! Multi-switch fabric topologies: named switches and links, per-switch
//! routing tables, and deterministic ECMP path selection.
//!
//! A [`Topology`] is a directed graph of host attachment points and
//! switches. Every physical cable contributes one link per direction, and
//! each *switch-sourced* link is the natural home of one egress
//! [`crate::SwitchPort`] in the simulation. Routing tables are built per
//! destination host by breadth-first search, so `table[switch][dst]` holds
//! exactly the egress links that lie on a shortest path — the ECMP
//! candidate set.
//!
//! Path choice is deterministic: [`Topology::route`] seeds a private RNG
//! from the run seed and a canonical `(topology, src, dst, flow)` key via
//! [`derive_path_seed`] — the same pinned FNV-1a/SplitMix64 scheme the
//! sweep grid and the chaos driver use — so the path of a given flow is a
//! pure function of the scenario, bit-identical at any worker count.

use std::collections::VecDeque;

use hostcc_sim::Rng;

/// Endpoint of a topology link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// A host NIC attachment point.
    Host(u32),
    /// A switch, by index into [`Topology::switch_name`].
    Switch(u32),
}

/// One directed link. Its egress queue (if any) lives at `from`: a link
/// sourced at a switch is backed by a `SwitchPort`; a link sourced at a
/// host is driven by that host's NIC serializer.
#[derive(Debug, Clone)]
pub struct TopoLink {
    /// Stable name, `"{from}-{to}"` (e.g. `"leaf0-spine1"`, `"h3-leaf0"`).
    /// Node names never contain `-`, so the name parses unambiguously.
    pub name: String,
    /// Source endpoint.
    pub from: Node,
    /// Destination endpoint.
    pub to: Node,
}

/// Derive the RNG seed of one ECMP path choice from the run's base seed
/// and a canonical route key.
///
/// This is byte-for-byte the pinned FNV-1a + SplitMix64 scheme the sweep
/// grid uses for per-cell seeds (`hostcc-experiments::grid::
/// derive_cell_seed`) and the chaos crate uses for per-event streams —
/// duplicated here because the dependencies point the other way. The
/// experiments crate carries a cross-crate consistency test pinning the
/// implementations to each other.
pub fn derive_path_seed(base_seed: u64, key: &str) -> u64 {
    if key.is_empty() {
        return base_seed;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = base_seed ^ h;
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A named multi-switch fabric graph with per-destination routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    hosts: u32,
    switch_names: Vec<String>,
    links: Vec<TopoLink>,
    /// Egress link ids of each switch.
    out_of_switch: Vec<Vec<u32>>,
    /// Uplink ids of each host (more than one = multi-NIC attachment).
    uplinks_of_host: Vec<Vec<u32>>,
    /// `dist[switch][dst]`: switch-hop count to `dst` (`u32::MAX` if
    /// unreachable); a switch directly attached to `dst` has distance 1.
    dist: Vec<Vec<u32>>,
    /// `table[switch][dst]`: egress links on shortest paths to `dst` —
    /// the ECMP candidate set, in link-id order.
    table: Vec<Vec<Vec<u32>>>,
}

/// Incremental builder state shared by the topology constructors.
struct Builder {
    name: String,
    hosts: u32,
    switch_names: Vec<String>,
    links: Vec<TopoLink>,
}

impl Builder {
    fn new(name: impl Into<String>, hosts: u32) -> Self {
        Builder {
            name: name.into(),
            hosts,
            switch_names: Vec::new(),
            links: Vec::new(),
        }
    }

    fn switch(&mut self, name: impl Into<String>) -> u32 {
        self.switch_names.push(name.into());
        (self.switch_names.len() - 1) as u32
    }

    fn node_name(&self, n: Node) -> String {
        match n {
            Node::Host(h) => format!("h{h}"),
            Node::Switch(s) => self.switch_names[s as usize].clone(),
        }
    }

    fn link(&mut self, from: Node, to: Node) {
        let name = format!("{}-{}", self.node_name(from), self.node_name(to));
        self.links.push(TopoLink { name, from, to });
    }

    /// A bidirectional cable: one link per direction.
    fn cable(&mut self, a: Node, b: Node) {
        self.link(a, b);
        self.link(b, a);
    }

    /// Compute routing tables and freeze into a [`Topology`].
    fn finish(self) -> Topology {
        let n_sw = self.switch_names.len();
        let n_hosts = self.hosts as usize;
        let mut out_of_switch = vec![Vec::new(); n_sw];
        let mut uplinks_of_host = vec![Vec::new(); n_hosts];
        // Reverse switch-switch adjacency for the per-destination BFS.
        let mut into_switch: Vec<Vec<u32>> = vec![Vec::new(); n_sw];
        for (i, l) in self.links.iter().enumerate() {
            match l.from {
                Node::Switch(s) => out_of_switch[s as usize].push(i as u32),
                Node::Host(h) => uplinks_of_host[h as usize].push(i as u32),
            }
            if let (Node::Switch(a), Node::Switch(b)) = (l.from, l.to) {
                into_switch[b as usize].push(a);
            }
        }
        let mut dist = vec![vec![u32::MAX; n_hosts]; n_sw];
        let mut queue = VecDeque::new();
        // `dst` indexes the *inner* axis of `dist`, so a range loop is the
        // natural shape here.
        #[allow(clippy::needless_range_loop)]
        for dst in 0..n_hosts {
            for l in &self.links {
                if let (Node::Switch(s), Node::Host(h)) = (l.from, l.to) {
                    if h as usize == dst && dist[s as usize][dst] == u32::MAX {
                        dist[s as usize][dst] = 1;
                        queue.push_back(s);
                    }
                }
            }
            while let Some(b) = queue.pop_front() {
                let d = dist[b as usize][dst];
                for &a in &into_switch[b as usize] {
                    if dist[a as usize][dst] == u32::MAX {
                        dist[a as usize][dst] = d + 1;
                        queue.push_back(a);
                    }
                }
            }
        }
        let mut table = vec![vec![Vec::new(); n_hosts]; n_sw];
        for s in 0..n_sw {
            for dst in 0..n_hosts {
                let d = dist[s][dst];
                if d == u32::MAX {
                    continue;
                }
                for &l in &out_of_switch[s] {
                    let keep = match self.links[l as usize].to {
                        Node::Host(h) => h as usize == dst && d == 1,
                        Node::Switch(x) => {
                            dist[x as usize][dst] != u32::MAX && dist[x as usize][dst] + 1 == d
                        }
                    };
                    if keep {
                        table[s][dst].push(l);
                    }
                }
            }
        }
        Topology {
            name: self.name,
            hosts: self.hosts,
            switch_names: self.switch_names,
            links: self.links,
            out_of_switch,
            uplinks_of_host,
            dist,
            table,
        }
    }
}

impl Topology {
    /// A dumbbell: `senders` hosts on switch `s0`, one receiver on `s1`,
    /// with the `s0-s1` cable as the shared bottleneck.
    pub fn dumbbell(senders: u32) -> Topology {
        assert!(senders >= 1, "a dumbbell needs at least one sender");
        let mut b = Builder::new("dumbbell", senders + 1);
        let s0 = b.switch("s0");
        let s1 = b.switch("s1");
        for h in 0..senders {
            b.cable(Node::Host(h), Node::Switch(s0));
        }
        b.cable(Node::Host(senders), Node::Switch(s1));
        b.cable(Node::Switch(s0), Node::Switch(s1));
        b.finish()
    }

    /// A two-tier leaf–spine fabric: `racks` leaves with `hosts_per_rack`
    /// hosts each, every leaf cabled to every one of `spines` spines.
    /// With `nics_per_host > 1`, host `h` additionally attaches to the
    /// next `nics_per_host - 1` leaves (mod `racks`) — multi-NIC
    /// attachment points that the ECMP first-hop choice spreads across.
    pub fn leaf_spine(
        racks: u32,
        hosts_per_rack: u32,
        spines: u32,
        nics_per_host: u32,
    ) -> Topology {
        assert!(racks >= 1 && hosts_per_rack >= 1 && spines >= 1);
        let nics = nics_per_host.clamp(1, racks);
        let hosts = racks * hosts_per_rack;
        let mut b = Builder::new("leaf-spine", hosts);
        let leaves: Vec<u32> = (0..racks).map(|r| b.switch(format!("leaf{r}"))).collect();
        let spine_ids: Vec<u32> = (0..spines).map(|s| b.switch(format!("spine{s}"))).collect();
        for h in 0..hosts {
            let rack = h / hosts_per_rack;
            for j in 0..nics {
                let leaf = leaves[((rack + j) % racks) as usize];
                b.cable(Node::Host(h), Node::Switch(leaf));
            }
        }
        for &l in &leaves {
            for &s in &spine_ids {
                b.cable(Node::Switch(l), Node::Switch(s));
            }
        }
        b.finish()
    }

    /// A k-ary fat tree (k even): k pods of k/2 edge + k/2 aggregation
    /// switches, `(k/2)²` cores, and `k³/4` hosts. Aggregation switch `a`
    /// of every pod cables to cores `a·k/2 .. a·k/2 + k/2`, the classic
    /// striping, giving `(k/2)²` equal-cost paths between pods.
    pub fn fat_tree(k: u32) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat tree needs even k >= 2");
        let half = k / 2;
        let hosts = k * half * half;
        let mut b = Builder::new("fat-tree", hosts);
        let mut edges = Vec::new();
        let mut aggs = Vec::new();
        for p in 0..k {
            for e in 0..half {
                edges.push(b.switch(format!("p{p}e{e}")));
            }
            for a in 0..half {
                aggs.push(b.switch(format!("p{p}a{a}")));
            }
        }
        let cores: Vec<u32> = (0..half * half)
            .map(|c| b.switch(format!("core{c}")))
            .collect();
        for p in 0..k {
            for e in 0..half {
                let edge = edges[(p * half + e) as usize];
                for h in 0..half {
                    let host = p * half * half + e * half + h;
                    b.cable(Node::Host(host), Node::Switch(edge));
                }
                for a in 0..half {
                    b.cable(
                        Node::Switch(edge),
                        Node::Switch(aggs[(p * half + a) as usize]),
                    );
                }
            }
            for a in 0..half {
                let agg = aggs[(p * half + a) as usize];
                for j in 0..half {
                    b.cable(
                        Node::Switch(agg),
                        Node::Switch(cores[(a * half + j) as usize]),
                    );
                }
            }
        }
        b.finish()
    }

    /// Topology family name (`"dumbbell"`, `"leaf-spine"`, `"fat-tree"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of host attachment points.
    pub fn host_count(&self) -> u32 {
        self.hosts
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_names.len()
    }

    /// Name of a switch.
    pub fn switch_name(&self, s: u32) -> &str {
        &self.switch_names[s as usize]
    }

    /// By convention the focus receiver is the last host.
    pub fn receiver(&self) -> u32 {
        self.hosts - 1
    }

    /// Hosts that can act as senders (everything but the receiver).
    pub fn sender_count(&self) -> u32 {
        self.hosts - 1
    }

    /// All links, in id order.
    pub fn links(&self) -> &[TopoLink] {
        &self.links
    }

    /// One link by id.
    pub fn link(&self, id: u32) -> &TopoLink {
        &self.links[id as usize]
    }

    /// True when the link's egress queue is a switch port.
    pub fn is_switch_sourced(&self, id: u32) -> bool {
        matches!(self.links[id as usize].from, Node::Switch(_))
    }

    /// Every link name, in link-id order (the valid chaos target set).
    pub fn link_names(&self) -> Vec<&str> {
        self.links.iter().map(|l| l.name.as_str()).collect()
    }

    /// Resolve a link name to its id.
    pub fn find_link(&self, name: &str) -> Option<u32> {
        self.links
            .iter()
            .position(|l| l.name == name)
            .map(|i| i as u32)
    }

    /// The uplink ids of one host (length > 1 = multi-NIC).
    pub fn host_uplinks(&self, host: u32) -> &[u32] {
        &self.uplinks_of_host[host as usize]
    }

    /// The egress link ids of one switch (each backed by its own port).
    pub fn switch_egress(&self, s: u32) -> &[u32] {
        &self.out_of_switch[s as usize]
    }

    /// Shortest switch-hop count from `src`'s best NIC to `dst`.
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        self.uplinks_of_host[src as usize]
            .iter()
            .filter_map(|&l| match self.links[l as usize].to {
                Node::Switch(s) => Some(self.dist[s as usize][dst as usize]),
                Node::Host(_) => None,
            })
            .min()
            .unwrap_or(u32::MAX)
    }

    /// The deterministic ECMP path of `(src, dst, flow)` under `base_seed`:
    /// the full link id sequence, host uplink first, then one switch-sourced
    /// link per hop down to `dst`. Ties at each hop are broken by a private
    /// RNG keyed on the canonical route identity via [`derive_path_seed`],
    /// so the same 5-tuple always takes the same path — independent of call
    /// order, worker count, or any other simulation state.
    pub fn route(&self, src: u32, dst: u32, flow: u32, base_seed: u64) -> Vec<u32> {
        assert!(src < self.hosts && dst < self.hosts && src != dst);
        let key = format!("ecmp:{}:h{src}->h{dst}:flow{flow}", self.name);
        let mut rng = Rng::new(derive_path_seed(base_seed, &key));
        let mut pick = |cands: &[u32]| -> u32 {
            if cands.len() == 1 {
                cands[0]
            } else {
                cands[rng.below(cands.len() as u64) as usize]
            }
        };
        // First hop: the shortest-path subset of the host's uplinks.
        let ups = &self.uplinks_of_host[src as usize];
        let d_via = |l: u32| match self.links[l as usize].to {
            Node::Switch(s) => self.dist[s as usize][dst as usize],
            Node::Host(h) => {
                if h == dst {
                    0
                } else {
                    u32::MAX
                }
            }
        };
        let best = ups.iter().map(|&l| d_via(l)).min().expect("host has a NIC");
        assert!(best != u32::MAX, "no route from h{src} to h{dst}");
        let firsts: Vec<u32> = ups.iter().copied().filter(|&l| d_via(l) == best).collect();
        let first = pick(&firsts);
        let mut path = vec![first];
        let mut cur = match self.links[first as usize].to {
            Node::Switch(s) => s,
            Node::Host(_) => return path, // direct cable (degenerate)
        };
        loop {
            let cands = &self.table[cur as usize][dst as usize];
            assert!(
                !cands.is_empty(),
                "no route from {} to h{dst}",
                self.switch_name(cur)
            );
            let l = pick(cands);
            path.push(l);
            match self.links[l as usize].to {
                Node::Host(h) => {
                    debug_assert_eq!(h, dst);
                    return path;
                }
                Node::Switch(s) => cur = s,
            }
        }
    }
}

/// Which fabric graph a scenario runs on — the compact, axis-friendly
/// description that [`TopologySpec::build`] expands into a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// All senders on one switch, the receiver on another (2 hops).
    Dumbbell,
    /// Two-tier Clos: racks of hosts under leaves, all leaves on every
    /// spine (3 switch hops across racks).
    LeafSpine,
    /// k-ary fat tree (5 switch hops across pods).
    FatTree,
}

impl TopologyKind {
    /// Every kind, in listing order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Dumbbell,
        TopologyKind::LeafSpine,
        TopologyKind::FatTree,
    ];

    /// Stable name used by grid axes and CLI listings.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Dumbbell => "dumbbell",
            TopologyKind::LeafSpine => "leaf-spine",
            TopologyKind::FatTree => "fat-tree",
        }
    }

    /// Parse a kind name as printed by [`TopologyKind::name`].
    pub fn parse(s: &str) -> Option<TopologyKind> {
        TopologyKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Parameters of a topology, small enough to live in a `Scenario`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySpec {
    /// The graph family.
    pub kind: TopologyKind,
    /// Rack (leaf) count for leaf–spine; `k` for a fat tree; ignored for
    /// a dumbbell.
    pub racks: u32,
    /// Hosts per rack for leaf–spine; sender count for a dumbbell;
    /// ignored for a fat tree (fixed at k/2 per edge switch).
    pub hosts_per_rack: u32,
}

impl TopologySpec {
    /// A dumbbell over `senders` sender hosts.
    pub fn dumbbell(senders: u32) -> Self {
        TopologySpec {
            kind: TopologyKind::Dumbbell,
            racks: 1,
            hosts_per_rack: senders,
        }
    }

    /// A leaf–spine fabric (two spines).
    pub fn leaf_spine(racks: u32, hosts_per_rack: u32) -> Self {
        TopologySpec {
            kind: TopologyKind::LeafSpine,
            racks,
            hosts_per_rack,
        }
    }

    /// A k-ary fat tree.
    pub fn fat_tree(k: u32) -> Self {
        TopologySpec {
            kind: TopologyKind::FatTree,
            racks: k,
            hosts_per_rack: k / 2,
        }
    }

    /// Expand into the full graph with routing tables.
    pub fn build(&self) -> Topology {
        match self.kind {
            TopologyKind::Dumbbell => Topology::dumbbell(self.racks * self.hosts_per_rack),
            TopologyKind::LeafSpine => Topology::leaf_spine(self.racks, self.hosts_per_rack, 2, 1),
            TopologyKind::FatTree => Topology::fat_tree(self.racks),
        }
    }

    /// Sender hosts this spec provides (receiver excluded).
    pub fn sender_count(&self) -> u32 {
        match self.kind {
            TopologyKind::Dumbbell => self.racks * self.hosts_per_rack,
            TopologyKind::LeafSpine => self.racks * self.hosts_per_rack - 1,
            TopologyKind::FatTree => self.racks * self.racks * self.racks / 4 - 1,
        }
    }

    /// Structural sanity checks; the message lists what went wrong.
    pub fn validate(&self) -> Result<(), String> {
        match self.kind {
            TopologyKind::Dumbbell if self.racks * self.hosts_per_rack < 1 => {
                Err("dumbbell needs at least one sender".into())
            }
            TopologyKind::LeafSpine if self.racks < 1 || self.hosts_per_rack < 1 => {
                Err("leaf-spine needs racks >= 1 and hosts_per_rack >= 1".into())
            }
            TopologyKind::LeafSpine if self.racks * self.hosts_per_rack < 2 => {
                Err("leaf-spine needs at least two hosts (sender + receiver)".into())
            }
            TopologyKind::FatTree if self.racks < 2 || !self.racks.is_multiple_of(2) => {
                Err(format!("fat tree needs even k >= 2, got k={}", self.racks))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    #[test]
    fn dumbbell_shape() {
        let t = Topology::dumbbell(3);
        assert_eq!(t.host_count(), 4);
        assert_eq!(t.switch_count(), 2);
        assert_eq!(t.receiver(), 3);
        // 4 cables host<->switch + 1 switch<->switch = 10 directed links.
        assert_eq!(t.links().len(), 10);
        let path = t.route(0, 3, 0, 1);
        assert_eq!(path.len(), 3, "uplink, s0-s1, s1-h3");
        let names: Vec<&str> = path.iter().map(|&l| t.link(l).name.as_str()).collect();
        assert_eq!(names, vec!["h0-s0", "s0-s1", "s1-h3"]);
        // Sender-to-sender traffic routes through s0 only.
        let names: Vec<&str> = t
            .route(0, 1, 9, 1)
            .iter()
            .map(|&l| t.link(l).name.as_str())
            .collect();
        assert_eq!(names, vec!["h0-s0", "s0-h1"]);
    }

    #[test]
    fn leaf_spine_shape_and_hops() {
        let t = Topology::leaf_spine(3, 2, 2, 1);
        assert_eq!(t.host_count(), 6);
        assert_eq!(t.switch_count(), 5);
        // Cross-rack: leaf -> spine -> leaf -> host = 3 switch hops.
        assert_eq!(t.hops(0, 5), 3);
        // Same-rack: leaf -> host = 1 hop.
        assert_eq!(t.hops(0, 1), 1);
        let path = t.route(0, 5, 0, 1);
        assert_eq!(path.len(), 4, "uplink + 3 switch-sourced hops");
        assert!(t.link(path[0]).name.starts_with("h0-leaf0"));
        assert!(t.link(path[1]).name.starts_with("leaf0-spine"));
        assert!(t.link(path[2]).name.ends_with("-leaf2"));
        assert_eq!(t.link(path[3]).name, format!("leaf2-h5"));
        // Every non-first hop is backed by a switch port.
        for &l in &path[1..] {
            assert!(t.is_switch_sourced(l));
        }
        assert!(!t.is_switch_sourced(path[0]));
    }

    #[test]
    fn multi_nic_hosts_attach_to_several_leaves() {
        let t = Topology::leaf_spine(3, 2, 2, 2);
        assert_eq!(t.host_uplinks(0).len(), 2);
        // A dual-homed host reaches a same-"rack" destination through
        // either leaf; the chosen first hop is on a shortest path.
        let path = t.route(0, 1, 0, 7);
        assert!(t.link(path[0]).name.starts_with("h0-leaf"));
        assert_eq!(*path.last().unwrap() as usize, {
            let id = t.find_link(&format!(
                "{}-h1",
                match t.link(*path.last().unwrap()).from {
                    Node::Switch(s) => t.switch_name(s).to_string(),
                    Node::Host(_) => unreachable!(),
                }
            ));
            id.unwrap() as usize
        });
    }

    #[test]
    fn fat_tree_shape() {
        let t = Topology::fat_tree(4);
        assert_eq!(t.host_count(), 16);
        // 4 pods x (2 edge + 2 agg) + 4 cores = 20 switches.
        assert_eq!(t.switch_count(), 20);
        // Inter-pod: edge -> agg -> core -> agg -> edge -> host = 5 hops.
        assert_eq!(t.hops(0, 15), 5);
        // Same-edge: 1 hop; same-pod-different-edge: 3 hops.
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 2), 3);
        let path = t.route(0, 15, 0, 1);
        assert_eq!(path.len(), 6, "uplink + 5 switch-sourced hops");
        // The middle hop traverses a core.
        assert!(t.link(path[3]).name.starts_with("core"));
    }

    #[test]
    fn routes_are_deterministic_and_flow_keyed() {
        let t = Topology::fat_tree(4);
        for flow in 0..32 {
            let a = t.route(2, 15, flow, 42);
            let b = t.route(2, 15, flow, 42);
            assert_eq!(a, b, "same 5-tuple => same path");
        }
        // Different seeds or flows spread across the path set.
        let paths: std::collections::BTreeSet<Vec<u32>> =
            (0..32).map(|f| t.route(2, 15, f, 42)).collect();
        assert!(paths.len() > 1, "ECMP must actually spread flows");
        // A k=4 fat tree has (k/2)^2 = 4 inter-pod paths; 32 flows cannot
        // use more.
        assert!(paths.len() <= 4);
    }

    #[test]
    fn ecmp_candidates_are_all_shortest() {
        let t = Topology::fat_tree(4);
        // Each path must have exactly 6 links (shortest inter-pod route),
        // whatever the ECMP choice.
        for flow in 0..64 {
            for src in 0..4 {
                let p = t.route(src, 15, flow, 7);
                assert_eq!(p.len(), 6, "src {src} flow {flow}");
                assert_eq!(
                    match t.link(*p.last().unwrap()).to {
                        Node::Host(h) => h,
                        Node::Switch(_) => u32::MAX,
                    },
                    15
                );
            }
        }
    }

    #[test]
    fn fat_tree_incast_path_histogram_is_pinned() {
        // The seeded k=4 fat-tree incast (15 senders -> h15, flow = sender,
        // seed 42): the per-core-link path histogram is a pure function of
        // the pinned hash scheme. If this histogram shifts, ECMP path
        // choice — and every topology-preset fingerprint — shifts with it.
        let t = Topology::fat_tree(4);
        let mut per_core: BTreeMap<String, u32> = BTreeMap::new();
        for src in 0..15 {
            let path = t.route(src, 15, src, 42);
            for &l in &path {
                let name = &t.link(l).name;
                if name.starts_with("core") || name.contains("-core") {
                    *per_core.entry(name.clone()).or_default() += 1;
                }
            }
        }
        let got: Vec<(String, u32)> = per_core.into_iter().collect();
        let want: Vec<(String, u32)> = [
            ("core0-p3a0", 4),
            ("core1-p3a0", 5),
            ("core2-p3a1", 1),
            ("core3-p3a1", 2),
            ("p0a0-core1", 3),
            ("p0a1-core3", 1),
            ("p1a0-core0", 2),
            ("p1a0-core1", 1),
            ("p1a1-core2", 1),
            ("p2a0-core0", 2),
            ("p2a0-core1", 1),
            ("p2a1-core3", 1),
        ]
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn path_seed_scheme_is_pinned() {
        // Empty key passes the base seed through (identity), matching the
        // grid and chaos derivations.
        assert_eq!(derive_path_seed(42, ""), 42);
        assert_ne!(derive_path_seed(1, "x"), derive_path_seed(2, "x"));
        assert_ne!(derive_path_seed(1, "x"), derive_path_seed(1, "y"));
    }

    #[test]
    fn link_names_resolve_back_to_ids() {
        let t = Topology::leaf_spine(3, 2, 2, 1);
        for (i, name) in t.link_names().iter().enumerate() {
            assert_eq!(t.find_link(name), Some(i as u32));
        }
        assert_eq!(t.find_link("spine9-leaf9"), None);
    }

    #[test]
    fn specs_build_and_validate() {
        assert_eq!(TopologySpec::dumbbell(2).build().host_count(), 3);
        assert_eq!(TopologySpec::leaf_spine(3, 2).build().host_count(), 6);
        assert_eq!(TopologySpec::fat_tree(4).build().host_count(), 16);
        assert_eq!(TopologySpec::fat_tree(4).sender_count(), 15);
        assert_eq!(TopologySpec::leaf_spine(3, 2).sender_count(), 5);
        assert!(TopologySpec::fat_tree(3).validate().is_err());
        assert!(TopologySpec::leaf_spine(1, 1).validate().is_err());
        assert!(TopologySpec::fat_tree(4).validate().is_ok());
        for k in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(k.name()), Some(k));
        }
        assert_eq!(TopologyKind::parse("torus"), None);
    }
}
