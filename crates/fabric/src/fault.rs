//! Deterministic fault injection for robustness testing.
//!
//! Modeled on smoltcp's example fault injectors: a configurable probability
//! of dropping or corrupting each packet, driven by the simulation's
//! deterministic RNG so failures are reproducible.

use hostcc_sim::Rng;

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0, 1]` that a *surviving* packet is corrupted (the
    /// simulation treats corruption as a checksum failure, i.e. a drop at
    /// the receiver — but it is accounted separately). The two draws are
    /// independent and a drop takes precedence, so the marginal corruption
    /// rate is `(1 − drop_chance) × corrupt_chance` — pinned by the
    /// statistical test below.
    pub corrupt_chance: f64,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
        }
    }
}

/// What happened to a packet passing through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Delivered unharmed.
    Pass,
    /// Dropped in flight.
    Drop,
    /// Corrupted in flight (dropped by the receiver's checksum).
    Corrupt,
}

/// A per-link fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Rng,
    drops: u64,
    corruptions: u64,
    passed: u64,
}

impl FaultInjector {
    /// Build an injector with its own RNG stream.
    pub fn new(config: FaultConfig, rng: Rng) -> Self {
        assert!((0.0..=1.0).contains(&config.drop_chance));
        assert!((0.0..=1.0).contains(&config.corrupt_chance));
        FaultInjector {
            config,
            rng,
            drops: 0,
            corruptions: 0,
            passed: 0,
        }
    }

    /// Decide the fate of one packet.
    ///
    /// Both probabilities are drawn on *every* call (the drop draw does
    /// not short-circuit the corrupt draw), so the injector consumes a
    /// fixed two RNG values per packet regardless of outcome: the decision
    /// stream for one fault dimension cannot shift when the other
    /// dimension's configuration changes.
    pub fn apply(&mut self) -> FaultOutcome {
        let drop = self.rng.chance(self.config.drop_chance);
        let corrupt = self.rng.chance(self.config.corrupt_chance);
        if drop {
            self.drops += 1;
            FaultOutcome::Drop
        } else if corrupt {
            self.corruptions += 1;
            FaultOutcome::Corrupt
        } else {
            self.passed += 1;
            FaultOutcome::Pass
        }
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets corrupted so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Packets passed unharmed so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_passes_everything() {
        let mut f = FaultInjector::new(FaultConfig::none(), Rng::new(1));
        for _ in 0..1000 {
            assert_eq!(f.apply(), FaultOutcome::Pass);
        }
        assert_eq!(f.passed(), 1000);
    }

    #[test]
    fn drop_chance_roughly_respected() {
        let mut f = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.15,
                corrupt_chance: 0.0,
            },
            Rng::new(2),
        );
        for _ in 0..10_000 {
            f.apply();
        }
        let rate = f.drops() as f64 / 10_000.0;
        assert!((rate - 0.15).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn corrupt_applies_after_drop() {
        let mut f = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.0,
                corrupt_chance: 1.0,
            },
            Rng::new(3),
        );
        assert_eq!(f.apply(), FaultOutcome::Corrupt);
    }

    #[test]
    fn independent_draws_pin_both_marginal_rates() {
        // Both dimensions are drawn independently with drop precedence:
        // marginal drop rate = 0.2, marginal corrupt rate = 0.8 × 0.5 = 0.4.
        let mut f = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.2,
                corrupt_chance: 0.5,
            },
            Rng::new(5),
        );
        let n = 20_000;
        for _ in 0..n {
            f.apply();
        }
        let drop_rate = f.drops() as f64 / n as f64;
        let corrupt_rate = f.corruptions() as f64 / n as f64;
        let pass_rate = f.passed() as f64 / n as f64;
        assert!((drop_rate - 0.2).abs() < 0.02, "drop={drop_rate}");
        assert!((corrupt_rate - 0.4).abs() < 0.02, "corrupt={corrupt_rate}");
        assert!((pass_rate - 0.4).abs() < 0.02, "pass={pass_rate}");
        assert_eq!(f.drops() + f.corruptions() + f.passed(), n);
    }

    #[test]
    fn drop_stream_unmoved_by_corrupt_config() {
        // Fixed two-draw consumption: reconfiguring corruption must not
        // shift which packets get dropped.
        let mut a = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.3,
                corrupt_chance: 0.0,
            },
            Rng::new(11),
        );
        let mut b = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.3,
                corrupt_chance: 1.0,
            },
            Rng::new(11),
        );
        for _ in 0..2000 {
            let da = a.apply() == FaultOutcome::Drop;
            let db = b.apply() == FaultOutcome::Drop;
            assert_eq!(da, db);
        }
        assert_eq!(a.drops(), b.drops());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FaultConfig {
            drop_chance: 0.3,
            corrupt_chance: 0.3,
        };
        let mut a = FaultInjector::new(cfg, Rng::new(7));
        let mut b = FaultInjector::new(cfg, Rng::new(7));
        for _ in 0..100 {
            assert_eq!(a.apply(), b.apply());
        }
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        FaultInjector::new(
            FaultConfig {
                drop_chance: 1.5,
                corrupt_chance: 0.0,
            },
            Rng::new(1),
        );
    }
}
