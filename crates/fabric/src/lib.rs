//! Network fabric primitives for the hostCC reproduction.
//!
//! The paper's testbed is two (or three, for the Fig 13 incast) servers
//! connected through a single switch. This crate models that fabric at the
//! packet level:
//!
//! * [`Packet`] — the simulated wire format: TCP-like data segments and
//!   cumulative ACKs, with a real ECN codepoint so both the switch *and*
//!   hostCC's receiver-side echo can mark CE.
//! * [`Link`] — a serializing, propagating point-to-point link.
//! * [`SwitchPort`] — an output-queued egress port with DCTCP-style ECN
//!   threshold marking and tail drop.
//! * [`FaultInjector`] — deterministic random drop/corruption, in the
//!   tradition of smoltcp's example fault injection, for robustness tests.
//!
//! Objects here are passive: they compute departure/arrival times and
//! mutate their own queue state, while the experiment driver owns the
//! global event queue and schedules the returned times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod fq;
mod link;
mod packet;
mod switch;
mod topology;

pub use fault::{FaultConfig, FaultInjector, FaultOutcome};
pub use fq::{Departure, FqLink};
pub use link::Link;
pub use packet::{
    Arena, ArenaRef, EcnCodepoint, FlowId, Packet, PacketArena, PacketBody, PacketRef, HEADER_BYTES,
};
pub use switch::{EnqueueOutcome, SwitchPort, SwitchPortConfig};
pub use topology::{derive_path_seed, Node, TopoLink, Topology, TopologyKind, TopologySpec};
