//! A serializing, propagating point-to-point link.

use hostcc_sim::{Nanos, Rate};

/// A point-to-point link with a serialization rate and propagation delay.
///
/// `transmit` models the NIC's wire: each packet occupies the transmitter
/// for `bytes / rate` starting no earlier than the previous packet finished,
/// then propagates for `propagation`. The returned value is the time the
/// **last bit** arrives at the far end — the moment the receiving NIC can
/// enqueue the packet.
///
/// The paper's testbed RTT is ~44 µs (it describes the 22 µs MBA write
/// latency as "2× smaller than our network RTT"), which for two hops each
/// way means ~8–10 µs of one-way per-link delay including stack overheads;
/// the default scenario configuration uses that value.
#[derive(Debug, Clone)]
pub struct Link {
    rate: Rate,
    propagation: Nanos,
    /// Time the transmitter becomes free.
    busy_until: Nanos,
    /// Total bytes ever serialized (diagnostics).
    bytes_sent: u64,
}

impl Link {
    /// A link with the given serialization rate and propagation delay.
    pub fn new(rate: Rate, propagation: Nanos) -> Self {
        assert!(!rate.is_zero(), "link rate must be positive");
        Link {
            rate,
            propagation,
            busy_until: Nanos::ZERO,
            bytes_sent: 0,
        }
    }

    /// The serialization rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// The propagation delay.
    pub fn propagation(&self) -> Nanos {
        self.propagation
    }

    /// Transmit `bytes` starting no earlier than `now`; returns
    /// `(transmit_complete, arrival)` — when the transmitter frees up and
    /// when the last bit reaches the far end.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> (Nanos, Nanos) {
        let start = now.max(self.busy_until);
        let done = start + self.rate.time_for_bytes(bytes);
        self.busy_until = done;
        self.bytes_sent += bytes;
        (done, done + self.propagation)
    }

    /// Transmit a same-timestamp batch, appending each packet's
    /// `(transmit_complete, arrival)` pair to `out`.
    ///
    /// Exactly equivalent to calling [`Link::transmit`] once per entry in
    /// order (per-packet serialization ceilings included — this is *not* a
    /// single `sum(bytes)` transmit, which would round differently), but a
    /// single call per burst instead of one dispatch per packet.
    pub fn transmit_batch(&mut self, now: Nanos, bytes: &[u64], out: &mut Vec<(Nanos, Nanos)>) {
        out.reserve(bytes.len());
        let mut start = now.max(self.busy_until);
        for &b in bytes {
            let done = start + self.rate.time_for_bytes(b);
            self.bytes_sent += b;
            out.push((done, done + self.propagation));
            start = done;
        }
        if !bytes.is_empty() {
            self.busy_until = start;
        }
    }

    /// When the transmitter next becomes free.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Backlog the transmitter is committed to, as seen at `now`.
    pub fn queued_delay(&self, now: Nanos) -> Nanos {
        self.busy_until.saturating_sub(now)
    }

    /// Total bytes ever serialized.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_100g() -> Link {
        Link::new(Rate::gbps(100.0), Nanos::from_micros(2))
    }

    #[test]
    fn single_packet_timing() {
        let mut l = link_100g();
        let (done, arrival) = l.transmit(Nanos::ZERO, 4096);
        // 4096 B at 12.5 B/ns = 328 ns (ceil).
        assert_eq!(done, Nanos::from_nanos(328));
        assert_eq!(arrival, Nanos::from_nanos(328) + Nanos::from_micros(2));
    }

    #[test]
    fn back_to_back_serialization() {
        let mut l = link_100g();
        let (done1, _) = l.transmit(Nanos::ZERO, 4096);
        let (done2, _) = l.transmit(Nanos::ZERO, 4096);
        assert_eq!(done2, done1 + Nanos::from_nanos(328));
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut l = link_100g();
        l.transmit(Nanos::ZERO, 4096);
        let late = Nanos::from_micros(100);
        let (done, _) = l.transmit(late, 4096);
        assert_eq!(done, late + Nanos::from_nanos(328));
    }

    #[test]
    fn queued_delay_reflects_backlog() {
        let mut l = link_100g();
        for _ in 0..10 {
            l.transmit(Nanos::ZERO, 4096);
        }
        assert_eq!(l.queued_delay(Nanos::ZERO), Nanos::from_nanos(3280));
        assert_eq!(l.queued_delay(Nanos::from_micros(10)), Nanos::ZERO);
    }

    #[test]
    fn accounts_bytes() {
        let mut l = link_100g();
        l.transmit(Nanos::ZERO, 1000);
        l.transmit(Nanos::ZERO, 500);
        assert_eq!(l.bytes_sent(), 1500);
    }

    #[test]
    fn batch_matches_sequential_transmits() {
        let sizes = [4096u64, 100, 1501, 66, 9000];
        let mut seq = link_100g();
        let mut batch = link_100g();
        // Pre-load both with one packet so the batch starts against a busy
        // transmitter.
        seq.transmit(Nanos::ZERO, 4096);
        batch.transmit(Nanos::ZERO, 4096);
        let now = Nanos::from_nanos(100);
        let expected: Vec<(Nanos, Nanos)> = sizes.iter().map(|&b| seq.transmit(now, b)).collect();
        let mut got = Vec::new();
        batch.transmit_batch(now, &sizes, &mut got);
        assert_eq!(got, expected);
        assert_eq!(batch.busy_until(), seq.busy_until());
        assert_eq!(batch.bytes_sent(), seq.bytes_sent());
        // Empty batch leaves the link untouched.
        batch.transmit_batch(now, &[], &mut got);
        assert_eq!(got.len(), sizes.len());
        assert_eq!(batch.busy_until(), seq.busy_until());
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_rejected() {
        Link::new(Rate::ZERO, Nanos::ZERO);
    }
}
