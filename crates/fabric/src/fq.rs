//! A fair-queueing sender link: per-flow queues with round-robin service.
//!
//! Models the Linux `fq` qdisc + TSQ behaviour of the paper's senders: a
//! throughput flow with a megabyte of congestion window cannot bury a
//! latency-sensitive RPC flow's packets behind its own backlog, because
//! each flow gets its own queue and the NIC serves them round-robin.
//! Without this, the simulated NetApp-L baseline latency would be dominated
//! by NetApp-T's self-inflicted sender-side queueing — an artifact real
//! Linux does not have.
//!
//! Hot-path notes: queues hold [`PacketRef`] arena handles plus a cached
//! wire-byte count, not packets by value, and are indexed by the dense
//! `FlowId` directly — no hashing, no per-packet allocation once each
//! flow's ring has reached its high-water capacity.
//!
//! Event integration: `enqueue` returns a departure to schedule if the
//! link was idle; on each departure event the driver calls `on_depart` to
//! obtain the next one. Exactly one departure event is outstanding per
//! busy link.

use std::collections::VecDeque;

use hostcc_flowscope::{FlowscopeHandle, Stage};
use hostcc_sim::{Nanos, Rate};

use crate::packet::{FlowId, PacketRef};

/// A departure the driver must schedule.
#[derive(Debug, Clone, Copy)]
pub struct Departure {
    /// When the packet's last bit leaves the sender NIC.
    pub at: Nanos,
    /// The departing packet (resolve against the driver's arena).
    pub pkt: PacketRef,
}

/// A fair-queueing link (sender NIC + qdisc).
#[derive(Debug)]
pub struct FqLink {
    rate: Rate,
    /// Per-flow FIFO queues of (handle, wire bytes, packet id), indexed by
    /// `FlowId.0`. The id rides along so the flowscope recorder can stamp
    /// stage boundaries without resolving the arena handle.
    queues: Vec<VecDeque<(PacketRef, u64, u64)>>,
    /// Queued bytes per flow, same indexing (O(1) [`FqLink::flow_backlog`]).
    flow_bytes: Vec<u64>,
    /// Round-robin order over flows with queued packets.
    active: VecDeque<u32>,
    /// In-service packet's departure time, if transmitting.
    in_service_until: Option<Nanos>,
    /// Whether the link is up. A down link keeps queueing but starts no
    /// new service; the in-flight packet (if any) finishes normally, as
    /// with a real PHY loss detected after the last bit left.
    up: bool,
    backlog_bytes: u64,
    /// Total packets ever serialized.
    pub sent: u64,
    /// Lifecycle recorder (disabled by default; stamps [`Stage::TxDma`],
    /// [`Stage::FqQueue`] and [`Stage::Serialize`] boundaries).
    flowscope: FlowscopeHandle,
}

impl FqLink {
    /// A link with the given serialization rate.
    pub fn new(rate: Rate) -> Self {
        assert!(!rate.is_zero());
        FqLink {
            rate,
            queues: Vec::new(),
            flow_bytes: Vec::new(),
            active: VecDeque::new(),
            in_service_until: None,
            up: true,
            backlog_bytes: 0,
            sent: 0,
            flowscope: FlowscopeHandle::disabled(),
        }
    }

    /// Attach a packet-lifecycle recorder.
    pub fn set_flowscope(&mut self, handle: FlowscopeHandle) {
        self.flowscope = handle;
    }

    /// The serialization rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Change the serialization rate mid-run (chaos brownouts). Applies
    /// from the next packet to enter service; the in-flight packet keeps
    /// its already-scheduled departure.
    pub fn set_rate(&mut self, rate: Rate) {
        assert!(!rate.is_zero(), "use set_up(false) to take the link down");
        self.rate = rate;
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Take the link down: packets keep queueing but no new service
    /// starts until [`FqLink::kick`]. The in-flight packet (if any) still
    /// departs at its scheduled time.
    pub fn set_down(&mut self) {
        self.up = false;
    }

    /// Bring the link back up at `now`. If the link is idle with backlog,
    /// service resumes immediately and the departure is returned — the
    /// driver must schedule it, preserving the one-outstanding-departure
    /// invariant.
    pub fn kick(&mut self, now: Nanos) -> Option<Departure> {
        self.up = true;
        if self.in_service_until.is_none() {
            return self.start_next(now);
        }
        None
    }

    /// Total bytes queued (not counting the packet in service).
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    /// Bytes queued for one flow.
    pub fn flow_backlog(&self, flow: FlowId) -> u64 {
        self.flow_bytes.get(flow.0 as usize).copied().unwrap_or(0)
    }

    /// Grow the per-flow tables to cover `flow` (first sighting only).
    fn ensure_flow(&mut self, flow: FlowId) -> usize {
        let idx = flow.0 as usize;
        if idx >= self.queues.len() {
            self.queues.resize_with(idx + 1, VecDeque::new);
            self.flow_bytes.resize(idx + 1, 0);
        }
        idx
    }

    /// Offer a packet at `now`. If the link was idle the packet enters
    /// service immediately and its departure is returned for scheduling.
    ///
    /// `wire_bytes` is the packet's on-wire size and `id` its packet id;
    /// the link caches both with the handle so serving packets never
    /// touches the arena.
    pub fn enqueue(
        &mut self,
        now: Nanos,
        flow: FlowId,
        wire_bytes: u64,
        id: u64,
        pkt: PacketRef,
    ) -> Option<Departure> {
        let idx = self.ensure_flow(flow);
        if self.queues[idx].is_empty() {
            self.active.push_back(flow.0);
        }
        self.backlog_bytes += wire_bytes;
        self.flow_bytes[idx] += wire_bytes;
        self.flowscope.boundary(id, Stage::TxDma, now);
        self.queues[idx].push_back((pkt, wire_bytes, id));
        if self.in_service_until.is_none() {
            return self.start_next(now);
        }
        None
    }

    /// Offer a same-flow batch at `now`, draining `pkts`. Equivalent to
    /// calling [`FqLink::enqueue`] once per element (only the first call
    /// can return a departure — the link is busy from then on), but does
    /// the active-list and byte accounting once for the whole burst.
    pub fn enqueue_burst(
        &mut self,
        now: Nanos,
        flow: FlowId,
        pkts: &mut Vec<(PacketRef, u64, u64)>,
    ) -> Option<Departure> {
        if pkts.is_empty() {
            return None;
        }
        let idx = self.ensure_flow(flow);
        if self.queues[idx].is_empty() {
            self.active.push_back(flow.0);
        }
        let burst_bytes: u64 = pkts.iter().map(|&(_, b, _)| b).sum();
        self.backlog_bytes += burst_bytes;
        self.flow_bytes[idx] += burst_bytes;
        if self.flowscope.is_enabled() {
            for &(_, _, id) in pkts.iter() {
                self.flowscope.boundary(id, Stage::TxDma, now);
            }
        }
        self.queues[idx].extend(pkts.drain(..));
        if self.in_service_until.is_none() {
            return self.start_next(now);
        }
        None
    }

    /// The in-service packet departed at `now`; start the next one (round-
    /// robin across flows). Returns the next departure to schedule.
    pub fn on_depart(&mut self, now: Nanos) -> Option<Departure> {
        self.in_service_until = None;
        self.start_next(now)
    }

    fn start_next(&mut self, now: Nanos) -> Option<Departure> {
        if !self.up {
            return None;
        }
        let flow = loop {
            let f = self.active.pop_front()?;
            if !self.queues[f as usize].is_empty() {
                break f;
            }
        };
        let q = &mut self.queues[flow as usize];
        let (pkt, wire_bytes, id) = q.pop_front().expect("non-empty");
        if !q.is_empty() {
            self.active.push_back(flow); // round-robin re-arm
        }
        self.backlog_bytes -= wire_bytes;
        self.flow_bytes[flow as usize] -= wire_bytes;
        let at = now + self.rate.time_for_bytes(wire_bytes);
        self.in_service_until = Some(at);
        self.sent += 1;
        // Serialize closes at the (future) departure instant; safe to stamp
        // early because any later stamp for this packet is later still.
        self.flowscope.boundary(id, Stage::FqQueue, now);
        self.flowscope.boundary(id, Stage::Serialize, at);
        Some(Departure { at, pkt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketArena};

    /// Intern a data packet; returns (flow, wire bytes, id, handle) ready
    /// to feed straight into `enqueue`.
    fn pkt(arena: &mut PacketArena, flow: u32, id: u64, len: u32) -> (FlowId, u64, u64, PacketRef) {
        let p = Packet::data(id, FlowId(flow), 0, len, false, Nanos::ZERO);
        let bytes = p.wire_bytes();
        (FlowId(flow), bytes, id, arena.insert(p))
    }

    fn link() -> FqLink {
        FqLink::new(Rate::gbps(100.0))
    }

    #[test]
    fn idle_link_starts_service_immediately() {
        let mut arena = PacketArena::new();
        let mut l = link();
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        let d = l.enqueue(Nanos::ZERO, f, b, i, r).expect("departure");
        assert_eq!(d.at, Nanos::from_nanos(328)); // 4096 B at 12.5 B/ns
        assert_eq!(arena.get(d.pkt).id, 1);
    }

    #[test]
    fn busy_link_queues() {
        let mut arena = PacketArena::new();
        let mut l = link();
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        l.enqueue(Nanos::ZERO, f, b, i, r).unwrap();
        let (f, b, i, r) = pkt(&mut arena, 0, 2, 4030);
        assert!(l.enqueue(Nanos::ZERO, f, b, i, r).is_none());
        assert_eq!(l.backlog_bytes(), 4096);
        // Departure of #1 starts #2.
        let d2 = l.on_depart(Nanos::from_nanos(328)).expect("next");
        assert_eq!(arena.get(d2.pkt).id, 2);
        assert_eq!(d2.at, Nanos::from_nanos(656));
        assert!(l.on_depart(d2.at).is_none(), "drained");
    }

    #[test]
    fn round_robin_interleaves_flows() {
        let mut arena = PacketArena::new();
        let mut l = link();
        // Flow 0 dumps 4 packets, then flow 1 enqueues one: flow 1 must be
        // served after at most one more flow-0 packet.
        for i in 1..=4 {
            let (f, b, i, r) = pkt(&mut arena, 0, i, 4030);
            l.enqueue(Nanos::ZERO, f, b, i, r);
        }
        let (f, b, i, r) = pkt(&mut arena, 1, 100, 100);
        l.enqueue(Nanos::ZERO, f, b, i, r);
        let mut order = Vec::new();
        let mut t = Nanos::from_nanos(328);
        while let Some(d) = l.on_depart(t) {
            order.push(arena.get(d.pkt).id);
            t = d.at;
        }
        // Flow 1's packet (#100) comes out after at most one more flow-0
        // packet, not behind flow 0's whole backlog.
        assert_eq!(order, [2, 100, 3, 4], "order={order:?}");
    }

    #[test]
    fn per_flow_backlog_accounting() {
        let mut arena = PacketArena::new();
        let mut l = link();
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030); // in service
        l.enqueue(Nanos::ZERO, f, b, i, r);
        let (f, b, i, r) = pkt(&mut arena, 0, 2, 4030);
        l.enqueue(Nanos::ZERO, f, b, i, r);
        let (f, b, i, r) = pkt(&mut arena, 1, 3, 100);
        l.enqueue(Nanos::ZERO, f, b, i, r);
        assert_eq!(l.flow_backlog(FlowId(0)), 4096);
        assert_eq!(l.flow_backlog(FlowId(1)), 166);
        assert_eq!(l.flow_backlog(FlowId(9)), 0, "unknown flow");
    }

    #[test]
    fn work_conserving_across_gaps() {
        let mut arena = PacketArena::new();
        let mut l = link();
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        let d = l.enqueue(Nanos::ZERO, f, b, i, r).unwrap();
        assert!(l.on_depart(d.at).is_none());
        // Much later, a new packet starts immediately.
        let (f, b, i, r) = pkt(&mut arena, 0, 2, 4030);
        let d2 = l
            .enqueue(Nanos::from_millis(1), f, b, i, r)
            .expect("starts");
        assert_eq!(d2.at, Nanos::from_millis(1) + Nanos::from_nanos(328));
    }

    #[test]
    fn down_link_queues_and_kick_resumes() {
        let mut arena = PacketArena::new();
        let mut l = link();
        // Packet in service, one queued; link goes down mid-service.
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        let d1 = l.enqueue(Nanos::ZERO, f, b, i, r).unwrap();
        let (f, b, i, r) = pkt(&mut arena, 0, 2, 4030);
        l.enqueue(Nanos::ZERO, f, b, i, r);
        l.set_down();
        assert!(!l.is_up());
        // The in-flight packet still departs, but nothing new starts.
        assert!(l.on_depart(d1.at).is_none());
        // New arrivals queue silently while down.
        let (f, b, i, r) = pkt(&mut arena, 0, 3, 4030);
        assert!(l.enqueue(Nanos::from_micros(1), f, b, i, r).is_none());
        assert_eq!(l.backlog_bytes(), 2 * 4096);
        // Kick at link-up: service resumes with the head-of-line packet.
        let d2 = l.kick(Nanos::from_micros(5)).expect("resumes");
        assert_eq!(arena.get(d2.pkt).id, 2);
        assert_eq!(d2.at, Nanos::from_micros(5) + Nanos::from_nanos(328));
        // Kicking an already-busy link is a no-op.
        assert!(l.kick(Nanos::from_micros(5)).is_none());
    }

    #[test]
    fn kick_on_idle_empty_link_is_noop() {
        let mut arena = PacketArena::new();
        let mut l = link();
        l.set_down();
        assert!(l.kick(Nanos::from_micros(1)).is_none());
        assert!(l.is_up());
        // Normal service afterwards.
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        assert!(l.enqueue(Nanos::from_micros(2), f, b, i, r).is_some());
    }

    #[test]
    fn rate_change_applies_to_next_service() {
        let mut arena = PacketArena::new();
        let mut l = link();
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        let d1 = l.enqueue(Nanos::ZERO, f, b, i, r).unwrap();
        assert_eq!(d1.at, Nanos::from_nanos(328));
        let (f, b, i, r) = pkt(&mut arena, 0, 2, 4030);
        l.enqueue(Nanos::ZERO, f, b, i, r);
        // Halve the rate: the in-flight packet keeps its departure, the
        // next one serializes in twice the time.
        l.set_rate(Rate::gbps(50.0));
        let d2 = l.on_depart(d1.at).unwrap();
        assert_eq!(d2.at, d1.at + Nanos::from_nanos(656));
        l.set_rate(Rate::gbps(100.0));
        assert_eq!(l.rate(), Rate::gbps(100.0));
    }

    #[test]
    fn many_flows_fair_share() {
        let mut arena = PacketArena::new();
        let mut l = link();
        // 3 flows × 10 packets each, all equal size.
        let mut first = None;
        for i in 0..10u64 {
            for fl in 0..3u32 {
                let (f, b, i, r) = pkt(&mut arena, fl, u64::from(fl) * 100 + i, 4030);
                let d = l.enqueue(Nanos::ZERO, f, b, i, r);
                if d.is_some() {
                    first = d;
                }
            }
        }
        let mut t = first.unwrap().at;
        let mut seen = vec![arena.get(first.unwrap().pkt).flow];
        while let Some(d) = l.on_depart(t) {
            seen.push(arena.get(d.pkt).flow);
            t = d.at;
        }
        assert_eq!(seen.len(), 30);
        // In any window of 3 consecutive departures, all 3 flows appear.
        for w in seen.chunks(3) {
            let mut fs: Vec<u32> = w.iter().map(|f| f.0).collect();
            fs.sort_unstable();
            assert_eq!(fs, [0, 1, 2], "seen={seen:?}");
        }
    }

    #[test]
    fn burst_enqueue_matches_singles() {
        // Same packet sequence via enqueue_burst vs one-at-a-time enqueue:
        // identical departure order and identical accounting.
        let mut arena = PacketArena::new();
        let mut single = link();
        let mut burst = link();
        let mut batch = Vec::new();
        let mut first_single = None;
        for i in 1..=5u64 {
            let (f, b, i, r) = pkt(&mut arena, 0, i, 4030);
            let d = single.enqueue(Nanos::ZERO, f, b, i, r);
            if d.is_some() {
                first_single = d;
            }
            let (_, b2, i2, r2) = pkt(&mut arena, 0, i, 4030);
            batch.push((r2, b2, i2));
        }
        let first_burst = burst.enqueue_burst(Nanos::ZERO, FlowId(0), &mut batch);
        assert!(batch.is_empty(), "burst drains its input");
        let (ds, db) = (first_single.unwrap(), first_burst.unwrap());
        assert_eq!(ds.at, db.at);
        assert_eq!(arena.get(ds.pkt).id, arena.get(db.pkt).id);
        assert_eq!(single.backlog_bytes(), burst.backlog_bytes());
        assert_eq!(
            single.flow_backlog(FlowId(0)),
            burst.flow_backlog(FlowId(0))
        );
        let mut t = ds.at;
        loop {
            let (a, b) = (single.on_depart(t), burst.on_depart(t));
            match (a, b) {
                (None, None) => break,
                (Some(da), Some(db)) => {
                    assert_eq!(da.at, db.at);
                    assert_eq!(arena.get(da.pkt).id, arena.get(db.pkt).id);
                    t = da.at;
                }
                _ => panic!("departure streams diverged"),
            }
        }
        assert_eq!(single.sent, burst.sent);
    }

    #[test]
    fn flowscope_stamps_tx_stages() {
        use hostcc_flowscope::FlowScope;
        let mut arena = PacketArena::new();
        let mut l = link();
        let fs = FlowscopeHandle::new(FlowScope::new());
        l.set_flowscope(fs.clone());
        // Two packets: #1 serves immediately, #2 waits one service time.
        fs.packet_sent(1, 0, Nanos::ZERO);
        fs.packet_sent(2, 0, Nanos::ZERO);
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        let d1 = l.enqueue(Nanos::ZERO, f, b, i, r).unwrap();
        let (f, b, i, r) = pkt(&mut arena, 0, 2, 4030);
        assert!(l.enqueue(Nanos::ZERO, f, b, i, r).is_none());
        let d2 = l.on_depart(d1.at).unwrap();
        fs.delivered(1, 4030, d1.at);
        fs.delivered(2, 4030, d2.at);
        let res = fs.result(d2.at).unwrap();
        // #1: zero fq queueing, 328 ns serialize; #2: 328 ns of each.
        assert_eq!(res.summary.stage_total_ns[Stage::FqQueue as usize], 328);
        assert_eq!(res.summary.stage_total_ns[Stage::Serialize as usize], 656);
        assert_eq!(res.summary.conservation_failures, 0);
        assert!(res.conservation_holds());
    }

    #[test]
    fn burst_on_busy_link_returns_none() {
        let mut arena = PacketArena::new();
        let mut l = link();
        let (f, b, i, r) = pkt(&mut arena, 0, 1, 4030);
        l.enqueue(Nanos::ZERO, f, b, i, r).unwrap();
        let mut batch = Vec::new();
        for i in 2..=3u64 {
            let (_, b2, i2, r2) = pkt(&mut arena, 0, i, 4030);
            batch.push((r2, b2, i2));
        }
        assert!(l
            .enqueue_burst(Nanos::ZERO, FlowId(0), &mut batch)
            .is_none());
        assert_eq!(l.backlog_bytes(), 2 * 4096);
        // Empty burst is a no-op even on an idle link.
        let mut empty = Vec::new();
        let mut idle = link();
        assert!(idle
            .enqueue_burst(Nanos::ZERO, FlowId(0), &mut empty)
            .is_none());
    }
}
