//! An output-queued switch egress port with DCTCP-style ECN marking.

use std::collections::VecDeque;

use hostcc_sim::{Nanos, Rate};

/// Configuration of a switch egress port.
#[derive(Debug, Clone, Copy)]
pub struct SwitchPortConfig {
    /// Egress serialization rate.
    pub rate: Rate,
    /// Total buffer capacity in bytes; arrivals beyond this are tail-dropped.
    pub buffer_bytes: u64,
    /// DCTCP marking threshold `K` in bytes: packets arriving to an
    /// instantaneous queue above `K` are marked CE ([DCTCP, SIGCOMM'10]).
    pub ecn_threshold_bytes: u64,
}

impl SwitchPortConfig {
    /// The scenario default: 100 Gbps egress, 1 MiB of buffer, and a
    /// marking threshold sized per the DCTCP guideline (K ≈ C·RTT/7 with
    /// C = 100 Gbps, RTT ≈ 40 µs ⇒ ~72 KiB; we round to 80 KiB).
    pub fn paper_default() -> Self {
        SwitchPortConfig {
            rate: Rate::gbps(100.0),
            buffer_bytes: 1 << 20,
            ecn_threshold_bytes: 80 * 1024,
        }
    }
}

/// Result of offering a packet to the egress port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted; the last bit leaves the port at `departs`, with `marked`
    /// indicating whether the queue exceeded `K` on arrival.
    Enqueued {
        /// Departure time of the packet's last bit from the egress port.
        departs: Nanos,
        /// True if the packet was ECN-marked CE on arrival.
        marked: bool,
    },
    /// Buffer full; the packet is dropped.
    Dropped,
}

/// An output-queued egress port.
///
/// The queue drains lazily: each `enqueue(now, …)` first retires all packets
/// whose departure time has passed, so no standalone "departure" events are
/// needed in the global event queue (the caller schedules the downstream
/// arrival from the returned departure time instead).
#[derive(Debug, Clone)]
pub struct SwitchPort {
    config: SwitchPortConfig,
    /// In-flight (departure_time, bytes) in FIFO order.
    queue: VecDeque<(Nanos, u64)>,
    backlog_bytes: u64,
    /// Time the serializer is next free.
    busy_until: Nanos,
    drops: u64,
    marks: u64,
    forwarded: u64,
    peak_backlog: u64,
}

impl SwitchPort {
    /// A port with the given configuration.
    pub fn new(config: SwitchPortConfig) -> Self {
        assert!(!config.rate.is_zero(), "switch port rate must be positive");
        assert!(
            config.ecn_threshold_bytes <= config.buffer_bytes,
            "ECN threshold beyond buffer capacity would never mark"
        );
        SwitchPort {
            config,
            queue: VecDeque::new(),
            backlog_bytes: 0,
            busy_until: Nanos::ZERO,
            drops: 0,
            marks: 0,
            forwarded: 0,
            peak_backlog: 0,
        }
    }

    fn drain(&mut self, now: Nanos) {
        while let Some(&(departs, bytes)) = self.queue.front() {
            if departs <= now {
                self.backlog_bytes -= bytes;
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    /// Offer a packet of `bytes` to the port at `now`.
    pub fn enqueue(&mut self, now: Nanos, bytes: u64) -> EnqueueOutcome {
        self.drain(now);
        if self.backlog_bytes + bytes > self.config.buffer_bytes {
            self.drops += 1;
            return EnqueueOutcome::Dropped;
        }
        // DCTCP marks on the instantaneous arrival-queue occupancy
        // *including the arriving packet*: the packet that pushes the
        // queue across K is itself marked ([DCTCP, SIGCOMM'10] §3.2).
        // Testing the pre-arrival backlog instead would let the
        // threshold-crossing packet through unmarked and delay the
        // congestion signal by one packet per excursion.
        let marked = self.backlog_bytes + bytes > self.config.ecn_threshold_bytes;
        let start = now.max(self.busy_until);
        let departs = start + self.config.rate.time_for_bytes(bytes);
        self.busy_until = departs;
        self.backlog_bytes += bytes;
        self.peak_backlog = self.peak_backlog.max(self.backlog_bytes);
        self.queue.push_back((departs, bytes));
        self.forwarded += 1;
        if marked {
            self.marks += 1;
        }
        EnqueueOutcome::Enqueued { departs, marked }
    }

    /// Instantaneous queue backlog at `now`.
    pub fn backlog_bytes(&mut self, now: Nanos) -> u64 {
        self.drain(now);
        self.backlog_bytes
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets marked CE so far.
    pub fn marks(&self) -> u64 {
        self.marks
    }

    /// Packets accepted so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Highest backlog ever observed.
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog
    }

    /// The port configuration.
    pub fn config(&self) -> &SwitchPortConfig {
        &self.config
    }

    /// Change the egress rate (chaos link-degrade on a fabric link).
    /// Already-scheduled departures keep their times; only packets
    /// enqueued after the change serialize at the new rate.
    pub fn set_rate(&mut self, rate: Rate) {
        assert!(!rate.is_zero(), "switch port rate must be positive");
        self.config.rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(buffer: u64, k: u64) -> SwitchPort {
        SwitchPort::new(SwitchPortConfig {
            rate: Rate::gbps(100.0),
            buffer_bytes: buffer,
            ecn_threshold_bytes: k,
        })
    }

    #[test]
    fn forwards_when_empty() {
        let mut p = port(10_000, 5_000);
        match p.enqueue(Nanos::ZERO, 4096) {
            EnqueueOutcome::Enqueued { departs, marked } => {
                assert_eq!(departs, Nanos::from_nanos(328));
                assert!(!marked);
            }
            EnqueueOutcome::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn marks_above_threshold() {
        let mut p = port(100_000, 5_000);
        // Fill past K.
        let mut marked_any = false;
        for _ in 0..10 {
            if let EnqueueOutcome::Enqueued { marked, .. } = p.enqueue(Nanos::ZERO, 1500) {
                marked_any |= marked;
            }
        }
        assert!(marked_any, "expected a mark once backlog exceeded K");
        // Post-enqueue depths are 1500, 3000, 4500, 6000, …: the first
        // three arrivals stay at or below K = 5000 and pass unmarked; the
        // fourth pushes the queue to 6000 > K and every arrival from there
        // on (packets 4..=10) is marked.
        assert_eq!(p.marks(), 7);
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn drops_when_full() {
        let mut p = port(3_000, 1_000);
        assert!(matches!(
            p.enqueue(Nanos::ZERO, 1500),
            EnqueueOutcome::Enqueued { .. }
        ));
        assert!(matches!(
            p.enqueue(Nanos::ZERO, 1500),
            EnqueueOutcome::Enqueued { .. }
        ));
        assert_eq!(p.enqueue(Nanos::ZERO, 1500), EnqueueOutcome::Dropped);
        assert_eq!(p.drops(), 1);
    }

    #[test]
    fn lazy_drain_frees_space() {
        let mut p = port(3_000, 3_000);
        p.enqueue(Nanos::ZERO, 1500);
        p.enqueue(Nanos::ZERO, 1500);
        // Both depart within 240 ns; at 1 us the buffer is empty again.
        let later = Nanos::from_micros(1);
        assert_eq!(p.backlog_bytes(later), 0);
        assert!(matches!(
            p.enqueue(later, 1500),
            EnqueueOutcome::Enqueued { .. }
        ));
    }

    #[test]
    fn fifo_departures_are_ordered() {
        let mut p = port(1 << 20, 1 << 20);
        let mut last = Nanos::ZERO;
        for _ in 0..50 {
            if let EnqueueOutcome::Enqueued { departs, .. } = p.enqueue(Nanos::ZERO, 4096) {
                assert!(departs > last);
                last = departs;
            }
        }
        assert_eq!(p.forwarded(), 50);
    }

    #[test]
    fn peak_backlog_tracks_max() {
        let mut p = port(1 << 20, 1 << 20);
        for _ in 0..10 {
            p.enqueue(Nanos::ZERO, 1000);
        }
        assert_eq!(p.peak_backlog(), 10_000);
    }

    #[test]
    #[should_panic(expected = "ECN threshold beyond buffer")]
    fn invalid_threshold_rejected() {
        port(1_000, 2_000);
    }
}
