//! The simulated wire format.

use hostcc_sim::Nanos;

/// Identifies a transport flow (a 4-tuple in real life).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// The ECN field of the (simulated) IP header.
///
/// hostCC performs receiver-side marking exactly like a switch would
/// (paper §4.3): set CE before the datagram reaches the transport layer;
/// if the switch already marked the packet, nothing changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnCodepoint {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable, not marked.
    Ect0,
    /// Congestion experienced.
    Ce,
}

impl EcnCodepoint {
    /// Apply a congestion mark (switch or hostCC echo). NotEct traffic is
    /// never marked — it would be dropped by a real AQM instead, but our
    /// simulated transports are always ECN-capable.
    #[must_use]
    pub fn marked(self) -> EcnCodepoint {
        match self {
            EcnCodepoint::NotEct => EcnCodepoint::NotEct,
            _ => EcnCodepoint::Ce,
        }
    }

    /// Whether the codepoint is CE.
    pub fn is_ce(self) -> bool {
        matches!(self, EcnCodepoint::Ce)
    }
}

/// Transport-level contents of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketBody {
    /// A data segment: `[seq, seq + len)` in the flow's byte stream.
    Data {
        /// First byte-stream offset carried.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
        /// Set on the last segment of an RPC message (pushes delivery).
        msg_end: bool,
    },
    /// A cumulative ACK.
    Ack {
        /// Next expected byte-stream offset.
        cum_ack: u64,
        /// ECN-Echo: receiver saw CE on the data packet(s) this acknowledges.
        ece: bool,
        /// Receiver's advertised window in bytes (flow control).
        rwnd: u64,
    },
}

/// A simulated packet.
///
/// Payload contents are never materialized — only sizes flow through the
/// simulation — which keeps memory flat no matter how much traffic runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique id (diagnostics; never used for matching).
    pub id: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Data or ACK.
    pub body: PacketBody,
    /// ECN field.
    pub ecn: EcnCodepoint,
    /// Simulated protocol header bytes (Ethernet+IP+TCP ≈ 66; we use 66).
    pub header_bytes: u32,
    /// Time the sender's transport handed the packet to the NIC.
    pub sent_at: Nanos,
    /// True if this transmission is a retransmission (diagnostics).
    pub retransmit: bool,
}

/// Default simulated header size: Ethernet (14) + IPv4 (20) + TCP (32,
/// with options) = 66 bytes.
pub const HEADER_BYTES: u32 = 66;

impl Packet {
    /// Construct a data packet.
    pub fn data(id: u64, flow: FlowId, seq: u64, len: u32, msg_end: bool, now: Nanos) -> Packet {
        Packet {
            id,
            flow,
            body: PacketBody::Data { seq, len, msg_end },
            ecn: EcnCodepoint::Ect0,
            header_bytes: HEADER_BYTES,
            sent_at: now,
            retransmit: false,
        }
    }

    /// Construct an ACK packet.
    pub fn ack(id: u64, flow: FlowId, cum_ack: u64, ece: bool, rwnd: u64, now: Nanos) -> Packet {
        Packet {
            id,
            flow,
            body: PacketBody::Ack { cum_ack, ece, rwnd },
            ecn: EcnCodepoint::Ect0,
            header_bytes: HEADER_BYTES,
            sent_at: now,
            retransmit: false,
        }
    }

    /// Bytes this packet occupies on the wire (headers + payload).
    pub fn wire_bytes(&self) -> u64 {
        let payload = match self.body {
            PacketBody::Data { len, .. } => len,
            PacketBody::Ack { .. } => 0,
        };
        (self.header_bytes + payload) as u64
    }

    /// Payload bytes (zero for ACKs).
    pub fn payload_bytes(&self) -> u64 {
        match self.body {
            PacketBody::Data { len, .. } => len as u64,
            PacketBody::Ack { .. } => 0,
        }
    }

    /// Whether this is a data packet.
    pub fn is_data(&self) -> bool {
        matches!(self.body, PacketBody::Data { .. })
    }

    /// Mark the packet CE in place (switch AQM or hostCC echo).
    pub fn mark_ce(&mut self) {
        self.ecn = self.ecn.marked();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_header() {
        let p = Packet::data(1, FlowId(0), 0, 4030, false, Nanos::ZERO);
        assert_eq!(p.wire_bytes(), 4030 + 66);
        assert_eq!(p.payload_bytes(), 4030);
    }

    #[test]
    fn ack_has_no_payload() {
        let a = Packet::ack(2, FlowId(0), 100, true, 65535, Nanos::ZERO);
        assert_eq!(a.wire_bytes(), 66);
        assert_eq!(a.payload_bytes(), 0);
        assert!(!a.is_data());
    }

    #[test]
    fn ecn_marking() {
        let mut p = Packet::data(1, FlowId(0), 0, 100, false, Nanos::ZERO);
        assert!(!p.ecn.is_ce());
        p.mark_ce();
        assert!(p.ecn.is_ce());
        // Idempotent.
        p.mark_ce();
        assert!(p.ecn.is_ce());
    }

    #[test]
    fn not_ect_is_never_marked() {
        assert_eq!(EcnCodepoint::NotEct.marked(), EcnCodepoint::NotEct);
        assert_eq!(EcnCodepoint::Ect0.marked(), EcnCodepoint::Ce);
        assert_eq!(EcnCodepoint::Ce.marked(), EcnCodepoint::Ce);
    }
}
