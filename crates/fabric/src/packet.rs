//! The simulated wire format, and the arena the hot path stores it in.

use std::marker::PhantomData;

use hostcc_sim::Nanos;

/// Identifies a transport flow (a 4-tuple in real life).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// The ECN field of the (simulated) IP header.
///
/// hostCC performs receiver-side marking exactly like a switch would
/// (paper §4.3): set CE before the datagram reaches the transport layer;
/// if the switch already marked the packet, nothing changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnCodepoint {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable, not marked.
    Ect0,
    /// Congestion experienced.
    Ce,
}

impl EcnCodepoint {
    /// Apply a congestion mark (switch or hostCC echo). NotEct traffic is
    /// never marked — it would be dropped by a real AQM instead, but our
    /// simulated transports are always ECN-capable.
    #[must_use]
    pub fn marked(self) -> EcnCodepoint {
        match self {
            EcnCodepoint::NotEct => EcnCodepoint::NotEct,
            _ => EcnCodepoint::Ce,
        }
    }

    /// Whether the codepoint is CE.
    pub fn is_ce(self) -> bool {
        matches!(self, EcnCodepoint::Ce)
    }
}

/// Transport-level contents of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketBody {
    /// A data segment: `[seq, seq + len)` in the flow's byte stream.
    Data {
        /// First byte-stream offset carried.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
        /// Set on the last segment of an RPC message (pushes delivery).
        msg_end: bool,
    },
    /// A cumulative ACK.
    Ack {
        /// Next expected byte-stream offset.
        cum_ack: u64,
        /// ECN-Echo: receiver saw CE on the data packet(s) this acknowledges.
        ece: bool,
        /// Receiver's advertised window in bytes (flow control).
        rwnd: u64,
    },
}

/// A simulated packet.
///
/// Payload contents are never materialized — only sizes flow through the
/// simulation — which keeps memory flat no matter how much traffic runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique id (diagnostics; never used for matching).
    pub id: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Data or ACK.
    pub body: PacketBody,
    /// ECN field.
    pub ecn: EcnCodepoint,
    /// Simulated protocol header bytes (Ethernet+IP+TCP ≈ 66; we use 66).
    pub header_bytes: u32,
    /// Time the sender's transport handed the packet to the NIC.
    pub sent_at: Nanos,
    /// True if this transmission is a retransmission (diagnostics).
    pub retransmit: bool,
}

/// Default simulated header size: Ethernet (14) + IPv4 (20) + TCP (32,
/// with options) = 66 bytes.
pub const HEADER_BYTES: u32 = 66;

impl Packet {
    /// Construct a data packet.
    pub fn data(id: u64, flow: FlowId, seq: u64, len: u32, msg_end: bool, now: Nanos) -> Packet {
        Packet {
            id,
            flow,
            body: PacketBody::Data { seq, len, msg_end },
            ecn: EcnCodepoint::Ect0,
            header_bytes: HEADER_BYTES,
            sent_at: now,
            retransmit: false,
        }
    }

    /// Construct an ACK packet.
    pub fn ack(id: u64, flow: FlowId, cum_ack: u64, ece: bool, rwnd: u64, now: Nanos) -> Packet {
        Packet {
            id,
            flow,
            body: PacketBody::Ack { cum_ack, ece, rwnd },
            ecn: EcnCodepoint::Ect0,
            header_bytes: HEADER_BYTES,
            sent_at: now,
            retransmit: false,
        }
    }

    /// Bytes this packet occupies on the wire (headers + payload).
    pub fn wire_bytes(&self) -> u64 {
        let payload = match self.body {
            PacketBody::Data { len, .. } => len,
            PacketBody::Ack { .. } => 0,
        };
        (self.header_bytes + payload) as u64
    }

    /// Payload bytes (zero for ACKs).
    pub fn payload_bytes(&self) -> u64 {
        match self.body {
            PacketBody::Data { len, .. } => len as u64,
            PacketBody::Ack { .. } => 0,
        }
    }

    /// Whether this is a data packet.
    pub fn is_data(&self) -> bool {
        matches!(self.body, PacketBody::Data { .. })
    }

    /// Mark the packet CE in place (switch AQM or hostCC echo).
    pub fn mark_ce(&mut self) {
        self.ecn = self.ecn.marked();
    }
}

/// A generational handle into an [`Arena<T>`].
///
/// 8 bytes (`u32` slot index + `u32` generation), `Copy`, and cheap to move
/// through the event queue — the whole point is that events carry this
/// instead of a by-value [`Packet`]. The generation catches use-after-free:
/// resolving a handle whose slot has since been freed and reused panics
/// instead of silently reading another packet's bytes.
pub struct ArenaRef<T> {
    idx: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: derived ones would (wrongly) require `T: Copy` etc. even
// though the handle never holds a `T`.
impl<T> Clone for ArenaRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArenaRef<T> {}
impl<T> PartialEq for ArenaRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx && self.generation == other.generation
    }
}
impl<T> Eq for ArenaRef<T> {}
impl<T> std::fmt::Debug for ArenaRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArenaRef({}v{})", self.idx, self.generation)
    }
}

struct Slot<T> {
    generation: u32,
    val: Option<T>,
}

/// A generational slab with a free list.
///
/// `insert` pops a slot off the free list (or grows the backing `Vec` once);
/// `remove` pushes it back and bumps the slot's generation. In steady state
/// the arena reaches the simulation's peak in-flight population and then
/// never allocates again — this is what takes the fq/link/switch path from
/// one heap round-trip per packet to zero.
///
/// Lifetime rule (see DESIGN.md §14): every interned value has exactly one
/// owner at a time, and whoever consumes or drops it calls [`remove`]
/// (a drop path that forgets to remove leaks the slot for the run; a double
/// remove or stale read panics).
///
/// [`remove`]: Arena::remove
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena (no backing storage until the first insert).
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Intern a value; the returned handle is the only way to get it back.
    pub fn insert(&mut self, val: T) -> ArenaRef<T> {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            ArenaRef {
                idx,
                generation: slot.generation,
                _marker: PhantomData,
            }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena capacity exceeded u32");
            self.slots.push(Slot {
                generation: 0,
                val: Some(val),
            });
            ArenaRef {
                idx,
                generation: 0,
                _marker: PhantomData,
            }
        }
    }

    /// Take the value back out, freeing the slot for reuse.
    ///
    /// # Panics
    /// If the handle is stale (the slot was already removed, or removed and
    /// reused by a later insert).
    pub fn remove(&mut self, r: ArenaRef<T>) -> T {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(
            slot.generation, r.generation,
            "stale ArenaRef: slot {} is at generation {}, handle at {}",
            r.idx, slot.generation, r.generation
        );
        let val = slot.val.take().expect("stale ArenaRef: slot already freed");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(r.idx);
        val
    }

    /// Borrow the value behind a handle.
    ///
    /// # Panics
    /// If the handle is stale.
    pub fn get(&self, r: ArenaRef<T>) -> &T {
        let slot = &self.slots[r.idx as usize];
        assert_eq!(
            slot.generation, r.generation,
            "stale ArenaRef: slot {} is at generation {}, handle at {}",
            r.idx, slot.generation, r.generation
        );
        slot.val
            .as_ref()
            .expect("stale ArenaRef: slot already freed")
    }

    /// Mutably borrow the value behind a handle.
    ///
    /// # Panics
    /// If the handle is stale.
    pub fn get_mut(&mut self, r: ArenaRef<T>) -> &mut T {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(
            slot.generation, r.generation,
            "stale ArenaRef: slot {} is at generation {}, handle at {}",
            r.idx, slot.generation, r.generation
        );
        slot.val
            .as_mut()
            .expect("stale ArenaRef: slot already freed")
    }

    /// Number of live (interned, not yet removed) values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (live + free). This is the arena's
    /// high-water mark: it only grows, and in steady state it stops.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// The arena the simulation interns in-flight [`Packet`]s into.
pub type PacketArena = Arena<Packet>;
/// Handle to an interned [`Packet`] — what events and fq queues carry.
pub type PacketRef = ArenaRef<Packet>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_header() {
        let p = Packet::data(1, FlowId(0), 0, 4030, false, Nanos::ZERO);
        assert_eq!(p.wire_bytes(), 4030 + 66);
        assert_eq!(p.payload_bytes(), 4030);
    }

    #[test]
    fn ack_has_no_payload() {
        let a = Packet::ack(2, FlowId(0), 100, true, 65535, Nanos::ZERO);
        assert_eq!(a.wire_bytes(), 66);
        assert_eq!(a.payload_bytes(), 0);
        assert!(!a.is_data());
    }

    #[test]
    fn ecn_marking() {
        let mut p = Packet::data(1, FlowId(0), 0, 100, false, Nanos::ZERO);
        assert!(!p.ecn.is_ce());
        p.mark_ce();
        assert!(p.ecn.is_ce());
        // Idempotent.
        p.mark_ce();
        assert!(p.ecn.is_ce());
    }

    #[test]
    fn not_ect_is_never_marked() {
        assert_eq!(EcnCodepoint::NotEct.marked(), EcnCodepoint::NotEct);
        assert_eq!(EcnCodepoint::Ect0.marked(), EcnCodepoint::Ce);
        assert_eq!(EcnCodepoint::Ce.marked(), EcnCodepoint::Ce);
    }

    #[test]
    fn arena_roundtrip_and_slot_reuse() {
        let mut arena: PacketArena = Arena::new();
        let a = arena.insert(Packet::data(1, FlowId(0), 0, 100, false, Nanos::ZERO));
        let b = arena.insert(Packet::data(2, FlowId(0), 100, 100, false, Nanos::ZERO));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).id, 1);
        assert_eq!(arena.get(b).id, 2);

        let taken = arena.remove(a);
        assert_eq!(taken.id, 1);
        assert_eq!(arena.len(), 1);

        // The freed slot is reused; capacity (high-water mark) stays flat.
        let c = arena.insert(Packet::data(3, FlowId(1), 0, 50, true, Nanos::ZERO));
        assert_eq!(arena.capacity(), 2);
        assert_eq!(c.idx, a.idx);
        assert_ne!(c, a, "reused slot must get a new generation");
        assert_eq!(arena.get(c).id, 3);
    }

    #[test]
    fn arena_mutation_through_handle() {
        let mut arena: PacketArena = Arena::new();
        let r = arena.insert(Packet::data(7, FlowId(2), 0, 100, false, Nanos::ZERO));
        arena.get_mut(r).mark_ce();
        assert!(arena.get(r).ecn.is_ce());
        assert!(arena.remove(r).ecn.is_ce());
        assert!(arena.is_empty());
    }

    #[test]
    #[should_panic(expected = "stale ArenaRef")]
    fn arena_stale_read_panics() {
        let mut arena: PacketArena = Arena::new();
        let r = arena.insert(Packet::data(1, FlowId(0), 0, 10, false, Nanos::ZERO));
        arena.remove(r);
        arena.get(r);
    }

    #[test]
    #[should_panic(expected = "stale ArenaRef")]
    fn arena_double_remove_panics() {
        let mut arena: PacketArena = Arena::new();
        let r = arena.insert(Packet::data(1, FlowId(0), 0, 10, false, Nanos::ZERO));
        arena.remove(r);
        // Reuse the slot so the generation check (not the Option) fires.
        arena.insert(Packet::data(2, FlowId(0), 0, 10, false, Nanos::ZERO));
        arena.remove(r);
    }
}
