//! Property-based tests for the fabric crate.

use hostcc_fabric::{
    Departure, EnqueueOutcome, FlowId, FqLink, Link, Packet, PacketArena, SwitchPort,
    SwitchPortConfig,
};
use hostcc_sim::{Nanos, Rate, Rng};
use proptest::prelude::*;

fn pkt(flow: u32, id: u64, len: u32) -> Packet {
    Packet::data(id, FlowId(flow), 0, len, false, Nanos::ZERO)
}

proptest! {
    /// FqLink conservation: every enqueued packet departs exactly once,
    /// departures are time-monotone, and consecutive departures are spaced
    /// by at least the serialization time of the departing packet.
    #[test]
    fn fq_link_conserves_and_serializes(
        pkts in prop::collection::vec((0u32..5, 100u32..9000), 1..120),
    ) {
        let rate = Rate::gbps(100.0);
        let mut arena = PacketArena::new();
        let mut l = FqLink::new(rate);
        let mut pending: Option<Departure> = None;
        let mut departed = Vec::new();
        for (i, &(flow, len)) in pkts.iter().enumerate() {
            let p = pkt(flow, i as u64, len);
            let bytes = p.wire_bytes();
            if let Some(d) = l.enqueue(Nanos::ZERO, p.flow, bytes, p.id, arena.insert(p)) {
                prop_assert!(pending.is_none(), "two in service at once");
                pending = Some(d);
            }
        }
        let mut last = Nanos::ZERO;
        while let Some(d) = pending {
            prop_assert!(d.at >= last);
            // Consume the departing packet (arena slot is freed exactly
            // once per enqueue — a double-depart would panic here).
            let p = arena.remove(d.pkt);
            // Spacing: this packet needed at least its serialization time.
            let ser = rate.time_for_bytes(p.wire_bytes());
            prop_assert!(d.at >= last + ser - Nanos::from_nanos(1) || last == Nanos::ZERO);
            last = d.at;
            departed.push(p.id);
            pending = l.on_depart(d.at);
        }
        prop_assert_eq!(departed.len(), pkts.len(), "conservation");
        let mut sorted = departed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pkts.len(), "no duplicates");
        prop_assert_eq!(l.backlog_bytes(), 0);
        prop_assert!(arena.is_empty(), "every interned packet was consumed");
    }

    /// FqLink fairness: with two continuously backlogged flows of equal
    /// packet size, departures alternate (max run length 2 at the start).
    #[test]
    fn fq_link_round_robin_fairness(n in 4usize..40) {
        let mut arena = PacketArena::new();
        let mut l = FqLink::new(Rate::gbps(100.0));
        let mut pending = None;
        for i in 0..n {
            for f in 0..2u32 {
                let p = pkt(f, (f as u64) << 32 | i as u64, 1500);
                let bytes = p.wire_bytes();
                if let Some(d) = l.enqueue(Nanos::ZERO, p.flow, bytes, p.id, arena.insert(p)) {
                    pending = Some(d);
                }
            }
        }
        let mut flows = Vec::new();
        while let Some(d) = pending {
            flows.push(arena.remove(d.pkt).flow.0);
            pending = l.on_depart(d.at);
        }
        // No flow is ever served 3 times in a row.
        for w in flows.windows(3) {
            prop_assert!(!(w[0] == w[1] && w[1] == w[2]), "run of 3: {flows:?}");
        }
    }

    /// Burst enqueue ≡ singles: the same same-flow packet sequence fed via
    /// `enqueue_burst` produces departures identical to one `enqueue` per
    /// packet.
    #[test]
    fn fq_burst_equals_singles(
        lens in prop::collection::vec(100u32..9000, 1..60),
        flow in 0u32..4,
    ) {
        let mut arena = PacketArena::new();
        let mut single = FqLink::new(Rate::gbps(100.0));
        let mut burst = FqLink::new(Rate::gbps(100.0));
        let mut batch = Vec::new();
        let mut d_single = None;
        for (i, &len) in lens.iter().enumerate() {
            let p = pkt(flow, i as u64, len);
            let bytes = p.wire_bytes();
            if let Some(d) = single.enqueue(Nanos::ZERO, p.flow, bytes, p.id, arena.insert(p)) {
                d_single = Some(d);
            }
            let p2 = pkt(flow, i as u64, len);
            let id2 = p2.id;
            batch.push((arena.insert(p2), bytes, id2));
        }
        let mut d_burst = burst.enqueue_burst(Nanos::ZERO, FlowId(flow), &mut batch);
        prop_assert_eq!(single.backlog_bytes(), burst.backlog_bytes());
        while let (Some(a), Some(b)) = (d_single, d_burst) {
            prop_assert_eq!(a.at, b.at);
            prop_assert_eq!(arena.remove(a.pkt).id, arena.remove(b.pkt).id);
            d_single = single.on_depart(a.at);
            d_burst = burst.on_depart(b.at);
        }
        prop_assert!(d_single.is_none() && d_burst.is_none(), "same departure count");
        prop_assert!(arena.is_empty());
    }

    /// Link batch transmit ≡ sequential transmits, for any byte sequence.
    #[test]
    fn link_batch_equals_sequential(
        sizes in prop::collection::vec(64u64..9000, 0..60),
        start_ns in 0u64..10_000,
    ) {
        let mut seq = Link::new(Rate::gbps(100.0), Nanos::from_micros(5));
        let mut bat = Link::new(Rate::gbps(100.0), Nanos::from_micros(5));
        let now = Nanos::from_nanos(start_ns);
        let expected: Vec<(Nanos, Nanos)> =
            sizes.iter().map(|&b| seq.transmit(now, b)).collect();
        let mut got = Vec::new();
        bat.transmit_batch(now, &sizes, &mut got);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(bat.busy_until(), seq.busy_until());
        prop_assert_eq!(bat.bytes_sent(), seq.bytes_sent());
    }

    /// Switch port: backlog never exceeds capacity; accepted + dropped =
    /// offered; departures are FIFO-ordered.
    #[test]
    fn switch_port_invariants(
        seed in any::<u64>(),
        k_frac in 0.1f64..1.0,
        offered in 1usize..300,
    ) {
        let buffer = 64 * 1024;
        let cfg = SwitchPortConfig {
            rate: Rate::gbps(100.0),
            buffer_bytes: buffer,
            ecn_threshold_bytes: (buffer as f64 * k_frac) as u64,
        };
        let mut p = SwitchPort::new(cfg);
        let mut rng = Rng::new(seed);
        let mut now = Nanos::ZERO;
        let mut last_depart = Nanos::ZERO;
        let mut accepted = 0u64;
        for _ in 0..offered {
            now += Nanos::from_nanos(rng.below(400));
            let bytes = 100 + rng.below(9000);
            match p.enqueue(now, bytes) {
                EnqueueOutcome::Enqueued { departs, .. } => {
                    prop_assert!(departs >= last_depart, "FIFO departures");
                    last_depart = departs;
                    accepted += 1;
                }
                EnqueueOutcome::Dropped => {}
            }
            prop_assert!(p.backlog_bytes(now) <= buffer);
        }
        prop_assert_eq!(accepted, p.forwarded());
        prop_assert_eq!(p.forwarded() + p.drops(), offered as u64);
    }

    /// Marks happen iff the post-enqueue backlog exceeds K: a port with
    /// K = capacity never marks (an accepted packet can at most fill the
    /// buffer, never exceed it); a port with K = 0 marks every accepted
    /// packet, including one arriving to an empty queue.
    #[test]
    fn switch_marking_boundaries(offered in 2usize..100) {
        let buffer = 1 << 20;
        let mut never = SwitchPort::new(SwitchPortConfig {
            rate: Rate::gbps(100.0),
            buffer_bytes: buffer,
            ecn_threshold_bytes: buffer,
        });
        let mut always = SwitchPort::new(SwitchPortConfig {
            rate: Rate::gbps(100.0),
            buffer_bytes: buffer,
            ecn_threshold_bytes: 0,
        });
        for _ in 0..offered {
            never.enqueue(Nanos::ZERO, 1500);
            always.enqueue(Nanos::ZERO, 1500);
        }
        prop_assert_eq!(never.marks(), 0);
        // Every accepted packet pushes the instantaneous queue above K = 0.
        prop_assert_eq!(always.marks(), offered as u64);
    }

    /// Plain Link: arrival times are monotone and spaced by serialization.
    #[test]
    fn link_serialization_spacing(sizes in prop::collection::vec(64u64..9000, 1..100)) {
        let rate = Rate::gbps(100.0);
        let mut l = Link::new(rate, Nanos::from_micros(5));
        let mut last_arrival = Nanos::ZERO;
        for &s in &sizes {
            let (_, arrival) = l.transmit(Nanos::ZERO, s);
            prop_assert!(arrival >= last_arrival + rate.time_for_bytes(s) - Nanos::from_nanos(1)
                || last_arrival == Nanos::ZERO);
            prop_assert!(arrival > last_arrival);
            last_arrival = arrival;
        }
        prop_assert_eq!(l.bytes_sent(), sizes.iter().sum::<u64>());
    }
}
