//! Property-based tests for the workload layer.

use hostcc_fabric::FlowId;
use hostcc_sim::{Nanos, Rng};
use hostcc_transport::{Flow, FlowConfig, Reno};
use hostcc_workloads::{IncastSpec, RpcClient, RpcConfig};
use proptest::prelude::*;

fn flow() -> Flow {
    Flow::new(FlowId(7), FlowConfig::for_mtu(4096), Box::new(Reno::new()))
}

proptest! {
    /// Incast flow splits always conserve the total and stay balanced
    /// within one flow.
    #[test]
    fn incast_split_conserves(senders in 1u32..8, total in 0u32..64) {
        let spec = IncastSpec { senders, total_flows: total };
        let sum: u32 = (0..senders).map(|i| spec.flows_for_sender(i)).sum();
        prop_assert_eq!(sum, total);
        let counts: Vec<u32> = (0..senders).map(|i| spec.flows_for_sender(i)).collect();
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
    }

    /// The closed-loop client never holds more than one outstanding
    /// request, however sends and completions interleave, and every
    /// completion is recorded exactly once.
    #[test]
    fn closed_loop_holds_at_most_one(seed in any::<u64>(), steps in 1usize..300) {
        let mut c = RpcClient::new(RpcConfig::default(), Rng::new(seed));
        let mut f = flow();
        let mut rng = Rng::new(seed ^ 1);
        let mut now = Nanos::ZERO;
        let mut completions = 0u64;
        for _ in 0..steps {
            now += Nanos::from_micros(rng.range(1, 50));
            c.maybe_send(now, &mut f);
            prop_assert!(c.outstanding_count() <= 1);
            if rng.chance(0.6) {
                let end = c.outstanding_offsets().next();
                if let Some(end) = end {
                    c.on_completion(end, now);
                    completions += 1;
                }
            }
        }
        prop_assert_eq!(c.completed, completions);
        let recorded: u64 = c.histograms.values().map(|h| h.count()).sum();
        prop_assert_eq!(recorded, completions);
    }

    /// Open-loop Poisson issue: the number of requests over a window tracks
    /// rate × window (law of large numbers, 6σ band), independent of
    /// completions.
    #[test]
    fn open_loop_rate_is_respected(seed in any::<u64>(), rate_krps in 20u64..200) {
        let mut cfg = RpcConfig::default();
        let rate = rate_krps as f64 * 1000.0;
        cfg.open_loop_rate = Some(rate);
        let mut c = RpcClient::new(cfg, Rng::new(seed));
        let mut f = flow();
        let window = Nanos::from_millis(20);
        // Never complete anything: all issued requests stay outstanding.
        c.maybe_send(window, &mut f);
        let issued = c.outstanding_count() as f64;
        let expected = rate * window.as_secs_f64();
        let sigma = expected.sqrt();
        prop_assert!(
            (issued - expected).abs() < 6.0 * sigma,
            "issued {issued} vs expected {expected}"
        );
    }

    /// Open-loop completions drain in FIFO order and never double-count.
    #[test]
    fn open_loop_completion_accounting(seed in any::<u64>()) {
        let cfg = RpcConfig {
            open_loop_rate: Some(500_000.0),
            ..RpcConfig::default()
        };
        let mut c = RpcClient::new(cfg, Rng::new(seed));
        let mut f = flow();
        c.maybe_send(Nanos::from_micros(100), &mut f);
        let ends: Vec<u64> = c.outstanding_offsets().collect();
        prop_assume!(!ends.is_empty());
        // Completing out of order is ignored (stream delivery is in-order).
        if ends.len() > 1 {
            c.on_completion(*ends.last().unwrap(), Nanos::from_micros(200));
            prop_assert_eq!(c.completed, 0, "out-of-order completion must not match");
        }
        for (i, end) in ends.iter().enumerate() {
            c.on_completion(*end, Nanos::from_micros(200 + i as u64));
        }
        prop_assert_eq!(c.completed, ends.len() as u64);
        prop_assert_eq!(c.outstanding_count(), 0);
    }
}
