//! Workload parameter sets from the paper.

/// The RPC sizes of Fig 4/12/15: 128 B to 32 KiB.
pub const PAPER_RPC_SIZES: [u64; 5] = [128, 512, 2048, 8192, 32768];

/// NetApp-T: long-running throughput flows.
///
/// "a NetApp-T that generates 4 long flows, each flow from one sender-side
/// CPU core to one receiver-side CPU core on the NIC-local NUMA node
/// (DCTCP needs a minimum of 4 cores to saturate 100 Gbps)" (§2.2).
#[derive(Debug, Clone, Copy)]
pub struct NetAppT {
    /// Number of greedy flows.
    pub flows: u32,
}

impl Default for NetAppT {
    fn default() -> Self {
        NetAppT { flows: 4 }
    }
}

/// MApp: the CPU-to-memory antagonist.
///
/// The degree scales the number of cores (8 per 1×) and thereby the
/// in-flight memory requests; 0 disables it.
#[derive(Debug, Clone, Copy)]
pub struct MAppSpec {
    /// Congestion degree (paper sweeps 0×–3×).
    pub degree: f64,
}

impl MAppSpec {
    /// No host-local traffic.
    pub fn off() -> Self {
        MAppSpec { degree: 0.0 }
    }

    /// The paper's heaviest setting.
    pub fn severe() -> Self {
        MAppSpec { degree: 3.0 }
    }
}

/// Incast (Fig 13): multiple senders fan into one receiver through a
/// single switch port; the degree of incast is the total number of active
/// concurrent flows at the receiver, 4–10 in the paper (1×–2.5×).
#[derive(Debug, Clone, Copy)]
pub struct IncastSpec {
    /// Number of sender hosts (the paper uses 2).
    pub senders: u32,
    /// Total concurrent flows across all senders.
    pub total_flows: u32,
}

impl IncastSpec {
    /// The paper's incast sweep point for a given degree multiplier
    /// (1× = 4 flows … 2.5× = 10 flows).
    pub fn for_degree(degree: f64) -> Self {
        IncastSpec {
            senders: 2,
            total_flows: (4.0 * degree).round() as u32,
        }
    }

    /// Flows assigned to sender `i` (balanced split).
    pub fn flows_for_sender(&self, i: u32) -> u32 {
        let base = self.total_flows / self.senders;
        let extra = u32::from(i < self.total_flows % self.senders);
        base + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(NetAppT::default().flows, 4);
        assert_eq!(PAPER_RPC_SIZES.len(), 5);
        assert_eq!(PAPER_RPC_SIZES[0], 128);
        assert_eq!(PAPER_RPC_SIZES[4], 32 * 1024);
    }

    #[test]
    fn incast_degrees() {
        assert_eq!(IncastSpec::for_degree(1.0).total_flows, 4);
        assert_eq!(IncastSpec::for_degree(1.5).total_flows, 6);
        assert_eq!(IncastSpec::for_degree(2.5).total_flows, 10);
    }

    #[test]
    fn incast_split_is_balanced() {
        let s = IncastSpec {
            senders: 2,
            total_flows: 7,
        };
        assert_eq!(s.flows_for_sender(0), 4);
        assert_eq!(s.flows_for_sender(1), 3);
        assert_eq!(s.flows_for_sender(0) + s.flows_for_sender(1), 7);
    }

    #[test]
    fn mapp_presets() {
        assert_eq!(MAppSpec::off().degree, 0.0);
        assert_eq!(MAppSpec::severe().degree, 3.0);
    }
}
