//! Workload parameter sets from the paper.

/// The RPC sizes of Fig 4/12/15: 128 B to 32 KiB.
pub const PAPER_RPC_SIZES: [u64; 5] = [128, 512, 2048, 8192, 32768];

/// NetApp-T: long-running throughput flows.
///
/// "a NetApp-T that generates 4 long flows, each flow from one sender-side
/// CPU core to one receiver-side CPU core on the NIC-local NUMA node
/// (DCTCP needs a minimum of 4 cores to saturate 100 Gbps)" (§2.2).
#[derive(Debug, Clone, Copy)]
pub struct NetAppT {
    /// Number of greedy flows.
    pub flows: u32,
}

impl Default for NetAppT {
    fn default() -> Self {
        NetAppT { flows: 4 }
    }
}

/// MApp: the CPU-to-memory antagonist.
///
/// The degree scales the number of cores (8 per 1×) and thereby the
/// in-flight memory requests; 0 disables it.
#[derive(Debug, Clone, Copy)]
pub struct MAppSpec {
    /// Congestion degree (paper sweeps 0×–3×).
    pub degree: f64,
}

impl MAppSpec {
    /// No host-local traffic.
    pub fn off() -> Self {
        MAppSpec { degree: 0.0 }
    }

    /// The paper's heaviest setting.
    pub fn severe() -> Self {
        MAppSpec { degree: 3.0 }
    }
}

/// Incast (Fig 13): multiple senders fan into one receiver through a
/// single switch port; the degree of incast is the total number of active
/// concurrent flows at the receiver, 4–10 in the paper (1×–2.5×).
#[derive(Debug, Clone, Copy)]
pub struct IncastSpec {
    /// Number of sender hosts (the paper uses 2).
    pub senders: u32,
    /// Total concurrent flows across all senders.
    pub total_flows: u32,
}

impl IncastSpec {
    /// The paper's incast sweep point for a given degree multiplier
    /// (1× = 4 flows … 2.5× = 10 flows).
    pub fn for_degree(degree: f64) -> Self {
        IncastSpec {
            senders: 2,
            total_flows: (4.0 * degree).round() as u32,
        }
    }

    /// Flows assigned to sender `i` (balanced split).
    pub fn flows_for_sender(&self, i: u32) -> u32 {
        let base = self.total_flows / self.senders;
        let extra = u32::from(i < self.total_flows % self.senders);
        base + extra
    }
}

/// How a scenario's greedy flows map onto the topology's hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every flow targets the focus receiver (the paper's fan-in shape;
    /// also the only pattern available without a topology).
    Incast,
    /// A ring collective: sender host `i` streams to host `i + 1`, with
    /// the focus receiver as the ring's sink — the steady-state
    /// communication shape of one ring-all-reduce chunk rotation.
    RingAllReduce,
}

impl TrafficPattern {
    /// Every pattern, in listing order.
    pub const ALL: [TrafficPattern; 2] = [TrafficPattern::Incast, TrafficPattern::RingAllReduce];

    /// Stable name used by CLI listings and manifests.
    pub fn name(self) -> &'static str {
        match self {
            TrafficPattern::Incast => "incast",
            TrafficPattern::RingAllReduce => "ring",
        }
    }

    /// Parse a pattern name as printed by [`TrafficPattern::name`].
    pub fn parse(s: &str) -> Option<TrafficPattern> {
        TrafficPattern::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Ring-all-reduce collective over `hosts` hosts: in every step of the
/// reduce-scatter/all-gather schedule, host `i` sends its chunk to host
/// `(i + 1) mod hosts`. The simulation models the steady-state of one
/// rotation with host `hosts - 1` (the focus receiver) as the sink.
#[derive(Debug, Clone, Copy)]
pub struct RingAllReduceSpec {
    /// Participating hosts (the topology's full host set).
    pub hosts: u32,
}

impl RingAllReduceSpec {
    /// The ring successor of `host` — where its chunk flows.
    pub fn dst_of(&self, host: u32) -> u32 {
        (host + 1) % self.hosts
    }

    /// The ring predecessor of `host` — whose chunk it receives.
    pub fn src_of(&self, host: u32) -> u32 {
        (host + self.hosts - 1) % self.hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbors_wrap() {
        let r = RingAllReduceSpec { hosts: 6 };
        assert_eq!(r.dst_of(0), 1);
        assert_eq!(r.dst_of(5), 0);
        assert_eq!(r.src_of(0), 5);
        // dst and src are inverses.
        for h in 0..6 {
            assert_eq!(r.src_of(r.dst_of(h)), h);
        }
    }

    #[test]
    fn pattern_names_round_trip() {
        for p in TrafficPattern::ALL {
            assert_eq!(TrafficPattern::parse(p.name()), Some(p));
        }
        assert_eq!(TrafficPattern::parse("all-to-all"), None);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(NetAppT::default().flows, 4);
        assert_eq!(PAPER_RPC_SIZES.len(), 5);
        assert_eq!(PAPER_RPC_SIZES[0], 128);
        assert_eq!(PAPER_RPC_SIZES[4], 32 * 1024);
    }

    #[test]
    fn incast_degrees() {
        assert_eq!(IncastSpec::for_degree(1.0).total_flows, 4);
        assert_eq!(IncastSpec::for_degree(1.5).total_flows, 6);
        assert_eq!(IncastSpec::for_degree(2.5).total_flows, 10);
    }

    #[test]
    fn incast_split_is_balanced() {
        let s = IncastSpec {
            senders: 2,
            total_flows: 7,
        };
        assert_eq!(s.flows_for_sender(0), 4);
        assert_eq!(s.flows_for_sender(1), 3);
        assert_eq!(s.flows_for_sender(0) + s.flows_for_sender(1), 7);
    }

    #[test]
    fn mapp_presets() {
        assert_eq!(MAppSpec::off().degree, 0.0);
        assert_eq!(MAppSpec::severe().degree, 3.0);
    }
}
