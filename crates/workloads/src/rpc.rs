//! NetApp-L: the closed-loop RPC client (netperf-style).
//!
//! One request is outstanding at a time per client (netperf TCP_RR). The
//! request travels the congested direction (sender → congested receiver);
//! the response leg is uncongested and tiny, so it is modeled as a fixed
//! delay added to the measured latency (documented substitution — see
//! DESIGN.md). Latency for a request of size `S`:
//!
//! `latency = (request delivered in order at receiver) − (request queued)
//!            + response_delay`
//!
//! which captures every congestion-sensitive term of the paper's Fig 4:
//! NIC queueing, drops → retransmissions/timeouts, and inflated receive
//! processing.

use std::collections::{HashMap, VecDeque};

use hostcc_metrics::Histogram;
use hostcc_sim::{Nanos, Rng};
use hostcc_transport::Flow;

/// RPC client configuration.
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// Request sizes cycled through (uniformly at random).
    pub sizes: Vec<u64>,
    /// Client think time between response and next request (closed loop).
    pub think: Nanos,
    /// Fixed cost of the uncongested response leg (server processing +
    /// reverse path).
    pub response_delay: Nanos,
    /// Open-loop mode: issue requests as a Poisson process at this rate
    /// (requests/second) regardless of outstanding requests, instead of
    /// netperf's closed loop. Open-loop load does not self-throttle under
    /// congestion, so tail latencies show queueing collapse rather than
    /// the closed loop's throughput collapse.
    pub open_loop_rate: Option<f64>,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            sizes: crate::PAPER_RPC_SIZES.to_vec(),
            think: Nanos::from_micros(5),
            response_delay: Nanos::from_micros(12),
            open_loop_rate: None,
        }
    }
}

/// One completed RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcSample {
    /// Request size in bytes.
    pub size: u64,
    /// End-to-end latency.
    pub latency: Nanos,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    end_offset: u64,
    size: u64,
    sent_at: Nanos,
}

/// An RPC client bound to one flow: closed-loop (netperf) by default,
/// open-loop Poisson when `RpcConfig::open_loop_rate` is set.
#[derive(Debug)]
pub struct RpcClient {
    cfg: RpcConfig,
    rng: Rng,
    /// In-flight requests, FIFO by stream position (closed loop holds at
    /// most one).
    outstanding: VecDeque<Outstanding>,
    next_send_at: Nanos,
    /// Latency histograms keyed by request size.
    pub histograms: HashMap<u64, Histogram>,
    /// Completed RPC count.
    pub completed: u64,
}

impl RpcClient {
    /// A client with the given configuration and RNG stream.
    pub fn new(cfg: RpcConfig, rng: Rng) -> Self {
        assert!(!cfg.sizes.is_empty());
        let histograms = cfg.sizes.iter().map(|&s| (s, Histogram::new())).collect();
        RpcClient {
            cfg,
            rng,
            outstanding: VecDeque::new(),
            next_send_at: Nanos::ZERO,
            histograms,
            completed: 0,
        }
    }

    /// Whether a request is in flight.
    pub fn busy(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// Number of requests in flight (closed loop: 0 or 1).
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Stream end offsets of the in-flight requests, in order (test and
    /// driver plumbing).
    pub fn outstanding_offsets(&self) -> impl Iterator<Item = u64> + '_ {
        self.outstanding.iter().map(|o| o.end_offset)
    }

    /// Issue the next request when due: closed loop sends one at a time
    /// after think time; open loop fires at Poisson intervals regardless
    /// of outstanding requests. Call before polling the flow for packets.
    pub fn maybe_send(&mut self, now: Nanos, flow: &mut Flow) {
        match self.cfg.open_loop_rate {
            None => {
                if !self.outstanding.is_empty() || now < self.next_send_at {
                    return;
                }
                self.send_one(now, flow);
            }
            Some(rate) => {
                while now >= self.next_send_at {
                    self.send_one(now, flow);
                    let gap_ns = self.rng.exp(1e9 / rate.max(1e-9));
                    self.next_send_at += Nanos::from_nanos(gap_ns.max(1.0) as u64);
                }
            }
        }
    }

    fn send_one(&mut self, now: Nanos, flow: &mut Flow) {
        let size = self.cfg.sizes[self.rng.below(self.cfg.sizes.len() as u64) as usize];
        let end_offset = flow.queue_message(size);
        self.outstanding.push_back(Outstanding {
            end_offset,
            size,
            sent_at: now,
        });
    }

    /// The request whose stream offset `end_offset` completed in-order
    /// delivery at the receiver at `completed_at`.
    pub fn on_completion(&mut self, end_offset: u64, completed_at: Nanos) {
        // Completions arrive in stream order; match the queue front.
        let Some(out) = self.outstanding.front().copied() else {
            return;
        };
        if out.end_offset != end_offset {
            return; // completion of an older (duplicate-delivery) boundary
        }
        self.outstanding.pop_front();
        let latency = completed_at.saturating_sub(out.sent_at) + self.cfg.response_delay;
        self.histograms
            .get_mut(&out.size)
            .expect("size key exists")
            .record(latency);
        self.completed += 1;
        if self.cfg.open_loop_rate.is_none() {
            self.next_send_at = completed_at + self.cfg.think;
        }
    }

    /// Reset measured histograms (e.g. after warm-up), keeping the
    /// outstanding request.
    pub fn reset_window(&mut self) {
        for h in self.histograms.values_mut() {
            h.clear();
        }
        self.completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::FlowId;
    use hostcc_transport::{FlowConfig, Reno};

    fn flow() -> Flow {
        Flow::new(FlowId(9), FlowConfig::for_mtu(4096), Box::new(Reno::new()))
    }

    fn client() -> RpcClient {
        RpcClient::new(RpcConfig::default(), Rng::new(3))
    }

    #[test]
    fn sends_one_request_at_a_time() {
        let mut c = client();
        let mut f = flow();
        c.maybe_send(Nanos::ZERO, &mut f);
        assert!(c.busy());
        let first = f.poll_send(Nanos::ZERO);
        assert!(first.is_some());
        // While busy, no second request is queued.
        c.maybe_send(Nanos::from_micros(1), &mut f);
        // The flow has exactly one message queued: draining it leaves
        // nothing (for sizes ≤ MSS).
        std::iter::from_fn(|| f.poll_send(Nanos::ZERO)).count();
        assert!(c.busy());
    }

    #[test]
    fn completion_records_latency_with_response_delay() {
        let mut c = client();
        let mut f = flow();
        c.maybe_send(Nanos::ZERO, &mut f);
        let out = *c.outstanding.front().expect("one outstanding");
        let end = out.end_offset;
        let size = out.size;
        c.on_completion(end, Nanos::from_micros(50));
        assert!(!c.busy());
        assert_eq!(c.completed, 1);
        let h = &c.histograms[&size];
        assert_eq!(h.count(), 1);
        // 50 µs delivery + 12 µs response leg.
        assert_eq!(h.max().unwrap(), Nanos::from_micros(62));
    }

    #[test]
    fn think_time_gates_next_request() {
        let mut c = client();
        let mut f = flow();
        c.maybe_send(Nanos::ZERO, &mut f);
        let end = c.outstanding.front().unwrap().end_offset;
        c.on_completion(end, Nanos::from_micros(50));
        // Within the 5 µs think time: idle.
        c.maybe_send(Nanos::from_micros(52), &mut f);
        assert!(!c.busy());
        c.maybe_send(Nanos::from_micros(55), &mut f);
        assert!(c.busy());
    }

    #[test]
    fn stale_completion_ignored() {
        let mut c = client();
        let mut f = flow();
        c.maybe_send(Nanos::ZERO, &mut f);
        c.on_completion(999_999, Nanos::from_micros(10));
        assert!(c.busy(), "mismatched offset must not complete the RPC");
        assert_eq!(c.completed, 0);
    }

    #[test]
    fn sizes_are_sampled_from_config() {
        let mut c = client();
        let mut f = flow();
        let mut seen = std::collections::HashSet::new();
        for i in 0..200u64 {
            c.maybe_send(Nanos::from_millis(i), &mut f);
            let o = *c.outstanding.front().unwrap();
            seen.insert(o.size);
            c.on_completion(o.end_offset, Nanos::from_millis(i));
        }
        assert_eq!(seen.len(), crate::PAPER_RPC_SIZES.len());
    }

    #[test]
    fn open_loop_sends_regardless_of_outstanding() {
        let cfg = RpcConfig {
            open_loop_rate: Some(100_000.0), // 100k req/s → ~10 µs gaps
            ..RpcConfig::default()
        };
        let mut c = RpcClient::new(cfg, Rng::new(5));
        let mut f = flow();
        // 1 ms with no completions at all: many requests pile up.
        c.maybe_send(Nanos::from_millis(1), &mut f);
        assert!(c.outstanding.len() > 50, "queued {}", c.outstanding.len());
    }

    #[test]
    fn open_loop_completions_match_in_order() {
        let cfg = RpcConfig {
            open_loop_rate: Some(1_000_000.0),
            ..RpcConfig::default()
        };
        let mut c = RpcClient::new(cfg, Rng::new(6));
        let mut f = flow();
        c.maybe_send(Nanos::from_micros(30), &mut f);
        let ends: Vec<u64> = c.outstanding.iter().map(|o| o.end_offset).collect();
        assert!(ends.len() >= 2);
        for (i, end) in ends.iter().enumerate() {
            c.on_completion(*end, Nanos::from_micros(100 + i as u64));
        }
        assert_eq!(c.completed, ends.len() as u64);
        assert!(!c.busy());
    }

    #[test]
    fn window_reset_clears_histograms() {
        let mut c = client();
        let mut f = flow();
        c.maybe_send(Nanos::ZERO, &mut f);
        let o = *c.outstanding.front().unwrap();
        c.on_completion(o.end_offset, Nanos::from_micros(1));
        c.reset_window();
        assert_eq!(c.completed, 0);
        assert!(c.histograms.values().all(|h| h.is_empty()));
    }
}
