//! The paper's three applications as reusable workload definitions
//! (§2.2):
//!
//! * **NetApp-T** ([`NetAppT`]) — iperf-style: 4 long flows, one per
//!   sender-core/receiver-core pair, greedy.
//! * **NetApp-L** ([`RpcClient`]) — netperf-style latency-sensitive RPCs
//!   of 128 B – 32 KiB, closed loop.
//! * **MApp** ([`MAppSpec`]) — Intel-MLC-style CPU-to-memory antagonist at
//!   a configurable congestion degree (the host model implements its
//!   mechanics; this is the knob).
//!
//! Plus the collective traffic shapes: the Fig 13 incast ([`IncastSpec`])
//! and a ring-all-reduce rotation ([`RingAllReduceSpec`]), selected per
//! scenario via [`TrafficPattern`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rpc;
mod specs;

pub use rpc::{RpcClient, RpcConfig, RpcSample};
pub use specs::{
    IncastSpec, MAppSpec, NetAppT, RingAllReduceSpec, TrafficPattern, PAPER_RPC_SIZES,
};
