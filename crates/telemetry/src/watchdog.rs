//! Conservation-law watchdog: cheap invariant checks evaluated at every
//! telemetry sample, catching model bugs (lost bytes, leaked credits,
//! out-of-range throttle levels) the moment they happen.

use hostcc_sim::Nanos;

/// The invariants the watchdog evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// NIC packet conservation: every packet that arrived is either
    /// dropped, still queued in NIC SRAM, in flight through PCIe/IIO, or
    /// delivered to the copy engine.
    NicConservation,
    /// PCIe credit conservation: in-flight wire bytes plus IIO-buffered
    /// bytes never exceed the configured credit limit, and neither side
    /// goes negative.
    PcieCredits,
    /// IIO occupancy accounting: buffered bytes equal cumulative
    /// insertions minus cumulative evictions (admissions to memory).
    IioAccounting,
    /// MBA level range: requested and effective throttle levels stay
    /// within `[0, levels)`.
    MbaLevel,
}

/// Number of invariant kinds.
pub const INVARIANT_COUNT: usize = 4;

/// All invariants, in check order.
pub const ALL_INVARIANTS: [Invariant; INVARIANT_COUNT] = [
    Invariant::NicConservation,
    Invariant::PcieCredits,
    Invariant::IioAccounting,
    Invariant::MbaLevel,
];

impl Invariant {
    /// Stable snake_case name (used as counter suffix and in manifests).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::NicConservation => "nic_conservation",
            Invariant::PcieCredits => "pcie_credits",
            Invariant::IioAccounting => "iio_accounting",
            Invariant::MbaLevel => "mba_level",
        }
    }

    fn index(self) -> usize {
        match self {
            Invariant::NicConservation => 0,
            Invariant::PcieCredits => 1,
            Invariant::IioAccounting => 2,
            Invariant::MbaLevel => 3,
        }
    }
}

/// One observed invariant violation (the watchdog keeps the first).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated time of the failing sample.
    pub at: Nanos,
    /// Which invariant failed.
    pub invariant: Invariant,
    /// Human-readable diagnostic with the offending numbers.
    pub detail: String,
}

/// A point-in-time snapshot of the host state the watchdog checks.
///
/// All fields are plain reads of model state; the host crate exposes them
/// via a probe struct so building this never perturbs the datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WatchdogInput {
    /// Packets that ever arrived at the NIC from the wire, accepted or
    /// dropped (cumulative).
    pub nic_arrivals: u64,
    /// Packets tail-dropped at the NIC (cumulative).
    pub nic_drops: u64,
    /// Packets currently queued in NIC SRAM (incl. a partially-DMAed head).
    pub nic_queued: u64,
    /// Packets fully streamed onto PCIe but not yet evicted from the IIO.
    pub iio_pending: u64,
    /// Packets delivered to the copy engine (cumulative).
    pub delivered: u64,
    /// Bytes currently in flight on the PCIe wire.
    pub pcie_inflight_bytes: f64,
    /// Bytes currently buffered in the IIO.
    pub iio_waiting_bytes: f64,
    /// Configured PCIe credit limit, in bytes.
    pub pcie_credit_limit_bytes: f64,
    /// Cumulative bytes inserted into the IIO buffer.
    pub iio_inserted_bytes: f64,
    /// Cumulative bytes admitted (evicted) from the IIO to memory.
    pub iio_admitted_bytes: f64,
    /// Currently requested MBA throttle level.
    pub mba_requested: u8,
    /// Currently effective MBA throttle level.
    pub mba_effective: u8,
    /// Number of valid MBA levels (levels are `0..mba_levels`).
    pub mba_levels: u8,
}

/// Float slack for byte-conservation checks: the IIO admit path absorbs
/// sub-1e-6 residues when it zeroes the buffer, and cumulative counters
/// accumulate ordinary f64 rounding, so allow a cacheline of drift plus a
/// relative term for long runs.
fn byte_epsilon(scale: f64) -> f64 {
    64.0 + 1e-9 * scale.abs()
}

/// Evaluates conservation invariants and records violations.
///
/// The watchdog is cumulative over the whole run (warmup included): a
/// conservation bug during warmup is just as fatal as one in the
/// measurement window. It keeps the first violation's full diagnostic so
/// strict mode can fail with a pointed message.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvariantWatchdog {
    checks: u64,
    violations: [u64; INVARIANT_COUNT],
    first: Option<Violation>,
}

impl InvariantWatchdog {
    /// A watchdog with no checks performed yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate all invariants against `input` at time `at`. Returns the
    /// number of invariants that failed this check.
    pub fn check(&mut self, at: Nanos, input: &WatchdogInput) -> u64 {
        self.checks += 1;
        let mut failed = 0;
        let accounted = input.nic_drops + input.nic_queued + input.iio_pending + input.delivered;
        if input.nic_arrivals != accounted {
            self.fail(
                at,
                Invariant::NicConservation,
                format!(
                    "{} packets arrived but {} accounted for \
                     (drops {} + queued {} + pending {} + delivered {})",
                    input.nic_arrivals,
                    accounted,
                    input.nic_drops,
                    input.nic_queued,
                    input.iio_pending,
                    input.delivered
                ),
            );
            failed += 1;
        }
        let eps = byte_epsilon(input.pcie_credit_limit_bytes);
        let held = input.pcie_inflight_bytes + input.iio_waiting_bytes;
        if input.pcie_inflight_bytes < -eps
            || input.iio_waiting_bytes < -eps
            || held > input.pcie_credit_limit_bytes + eps
        {
            self.fail(
                at,
                Invariant::PcieCredits,
                format!(
                    "wire {:.1} B + IIO {:.1} B = {:.1} B held vs credit limit {:.1} B",
                    input.pcie_inflight_bytes,
                    input.iio_waiting_bytes,
                    held,
                    input.pcie_credit_limit_bytes
                ),
            );
            failed += 1;
        }
        let expected = input.iio_inserted_bytes - input.iio_admitted_bytes;
        if (input.iio_waiting_bytes - expected).abs() > byte_epsilon(input.iio_inserted_bytes) {
            self.fail(
                at,
                Invariant::IioAccounting,
                format!(
                    "IIO holds {:.3} B but inserted {:.3} − admitted {:.3} = {:.3} B",
                    input.iio_waiting_bytes,
                    input.iio_inserted_bytes,
                    input.iio_admitted_bytes,
                    expected
                ),
            );
            failed += 1;
        }
        if input.mba_requested >= input.mba_levels || input.mba_effective >= input.mba_levels {
            self.fail(
                at,
                Invariant::MbaLevel,
                format!(
                    "MBA level out of range: requested {} / effective {} with {} levels",
                    input.mba_requested, input.mba_effective, input.mba_levels
                ),
            );
            failed += 1;
        }
        failed
    }

    fn fail(&mut self, at: Nanos, invariant: Invariant, detail: String) {
        self.violations[invariant.index()] += 1;
        if self.first.is_none() {
            self.first = Some(Violation {
                at,
                invariant,
                detail,
            });
        }
    }

    /// Number of checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violation count for one invariant.
    pub fn violations_of(&self, invariant: Invariant) -> u64 {
        self.violations[invariant.index()]
    }

    /// Total violations across all invariants.
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().sum()
    }

    /// The first violation observed, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// A pointed one-line diagnostic for strict mode, if anything failed.
    pub fn diagnostic(&self) -> Option<String> {
        self.first.as_ref().map(|v| {
            format!(
                "invariant '{}' violated at t={:.3} µs ({} total violation(s)): {}",
                v.invariant.name(),
                v.at.as_micros_f64(),
                self.total_violations(),
                v.detail
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> WatchdogInput {
        WatchdogInput {
            nic_arrivals: 100,
            nic_drops: 10,
            nic_queued: 5,
            iio_pending: 2,
            delivered: 83,
            pcie_inflight_bytes: 1000.0,
            iio_waiting_bytes: 2000.0,
            pcie_credit_limit_bytes: 5952.0,
            iio_inserted_bytes: 100_000.0,
            iio_admitted_bytes: 98_000.0,
            mba_requested: 3,
            mba_effective: 2,
            mba_levels: 5,
        }
    }

    #[test]
    fn healthy_input_passes_all_checks() {
        let mut w = InvariantWatchdog::new();
        assert_eq!(w.check(Nanos::from_nanos(700), &healthy()), 0);
        assert_eq!(w.checks(), 1);
        assert_eq!(w.total_violations(), 0);
        assert!(w.diagnostic().is_none());
    }

    #[test]
    fn lost_packet_trips_nic_conservation() {
        let mut w = InvariantWatchdog::new();
        let mut input = healthy();
        input.delivered -= 1;
        assert_eq!(w.check(Nanos::from_nanos(700), &input), 1);
        assert_eq!(w.violations_of(Invariant::NicConservation), 1);
        let d = w.diagnostic().unwrap();
        assert!(d.contains("nic_conservation"), "{d}");
        assert!(d.contains("0.700"), "{d}");
    }

    #[test]
    fn credit_overrun_trips_pcie_credits() {
        let mut w = InvariantWatchdog::new();
        let mut input = healthy();
        input.pcie_inflight_bytes = 5000.0;
        input.iio_waiting_bytes = 2000.0;
        assert_eq!(w.check(Nanos::ZERO, &input), 1);
        assert_eq!(w.violations_of(Invariant::PcieCredits), 1);
    }

    #[test]
    fn small_float_residue_is_tolerated() {
        let mut w = InvariantWatchdog::new();
        let mut input = healthy();
        // 2000 expected vs 2000.5 held: within the 64 B slack.
        input.iio_waiting_bytes = 2000.5;
        assert_eq!(w.check(Nanos::ZERO, &input), 0);
        // A cacheline and a half of drift is a real leak.
        input.iio_waiting_bytes = 2100.0;
        assert_eq!(w.check(Nanos::ZERO, &input), 1);
        assert_eq!(w.violations_of(Invariant::IioAccounting), 1);
    }

    #[test]
    fn out_of_range_mba_level_trips() {
        let mut w = InvariantWatchdog::new();
        let mut input = healthy();
        input.mba_requested = 5;
        assert_eq!(w.check(Nanos::ZERO, &input), 1);
        assert_eq!(w.violations_of(Invariant::MbaLevel), 1);
    }

    #[test]
    fn first_violation_is_kept_across_later_ones() {
        let mut w = InvariantWatchdog::new();
        let mut bad = healthy();
        bad.mba_requested = 9;
        w.check(Nanos::from_nanos(100), &bad);
        bad.delivered = 0;
        w.check(Nanos::from_nanos(200), &bad);
        assert_eq!(w.first_violation().unwrap().at, Nanos::from_nanos(100));
        assert_eq!(w.first_violation().unwrap().invariant, Invariant::MbaLevel);
        assert_eq!(w.total_violations(), 3);
    }
}
