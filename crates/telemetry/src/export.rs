//! Exporters: wide CSV, JSONL and Prometheus-style text.

use std::collections::BTreeMap;

use hostcc_metrics::TimeSeries;
use hostcc_sim::Nanos;

use crate::handle::TelemetryResult;
use crate::registry::MetricRegistry;

/// Render recorded series as a wide CSV: one `time_us` column plus one
/// column per metric (in name order). Metrics sampled at a given time get
/// their value; metrics without a point at that time leave the cell empty.
pub fn wide_csv(series: &BTreeMap<String, TimeSeries>) -> String {
    let names: Vec<&str> = series.keys().map(String::as_str).collect();
    let mut rows: BTreeMap<Nanos, Vec<Option<f64>>> = BTreeMap::new();
    for (col, s) in series.values().enumerate() {
        for (t, v) in s.iter() {
            rows.entry(t).or_insert_with(|| vec![None; names.len()])[col] = Some(v);
        }
    }
    let mut out = String::from("time_us");
    for n in &names {
        out.push(',');
        out.push_str(n);
    }
    out.push('\n');
    for (t, vals) in &rows {
        out.push_str(&format!("{:.3}", t.as_micros_f64()));
        for v in vals {
            out.push(',');
            if let Some(v) = v {
                out.push_str(&format!("{v:.6}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Render recorded series as JSONL: one object per sample point, e.g.
/// `{"t_us":1.400,"metric":"host.pcie.bw_gbps","value":3.25}`.
pub fn to_jsonl(series: &BTreeMap<String, TimeSeries>) -> String {
    let mut out = String::new();
    for (name, s) in series {
        for (t, v) in s.iter() {
            out.push_str(&format!(
                "{{\"t_us\":{:.3},\"metric\":\"{}\",\"value\":{}}}\n",
                t.as_micros_f64(),
                json_escape(name),
                json_f64(v)
            ));
        }
    }
    out
}

/// Render the final registry state as Prometheus-style exposition text.
/// Dotted metric names are mangled to underscores and prefixed `hostcc_`;
/// histograms expand into `_bucket`/`_sum`/`_count` lines.
pub fn prometheus_text(registry: &MetricRegistry) -> String {
    let mut out = String::new();
    for (name, v) in registry.counters() {
        let m = mangle(name);
        out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
    }
    for (name, v) in registry.gauges() {
        let m = mangle(name);
        out.push_str(&format!("# TYPE {m} gauge\n{m} {}\n", json_f64(v)));
    }
    for (name, h) in registry.histograms() {
        let m = mangle(name);
        out.push_str(&format!("# TYPE {m} histogram\n"));
        let mut cum = 0u64;
        for (i, &c) in h.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push_str(&format!(
                "{m}_bucket{{le=\"{}\"}} {cum}\n",
                crate::registry::LogHistogram::bucket_floor(i + 1)
            ));
        }
        out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{m}_sum {}\n", json_f64(h.sum())));
        out.push_str(&format!("{m}_count {}\n", h.count()));
    }
    out
}

/// Render the run summary (and strict verdict) as a small JSON object,
/// suitable for machine checks in CI.
pub fn summary_json(result: &TelemetryResult) -> String {
    let s = &result.summary;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"samples\": {},\n", s.samples));
    out.push_str(&format!("  \"checks\": {},\n", s.checks));
    out.push_str(&format!(
        "  \"watchdog_violations\": {},\n",
        s.total_violations()
    ));
    out.push_str("  \"violations_by_invariant\": {");
    let mut first = true;
    for (k, v) in &s.violations {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    out.push_str(&format!("  \"strict\": {},\n", result.strict));
    match &result.diagnostic {
        Some(d) => out.push_str(&format!("  \"diagnostic\": \"{}\",\n", json_escape(d))),
        None => out.push_str("  \"diagnostic\": null,\n"),
    }
    out.push_str(&format!(
        "  \"fingerprint\": \"{:#018x}\"\n}}\n",
        s.fingerprint()
    ));
    out
}

fn mangle(name: &str) -> String {
    let mut m = String::with_capacity(name.len() + 7);
    m.push_str("hostcc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            m.push(c);
        } else {
            m.push('_');
        }
    }
    m
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Telemetry;

    fn two_series() -> BTreeMap<String, TimeSeries> {
        let mut a = TimeSeries::new("a.x");
        a.push(Nanos::from_nanos(700), 1.0);
        a.push(Nanos::from_nanos(1400), 2.0);
        let mut b = TimeSeries::new("b.y");
        b.push(Nanos::from_nanos(1400), 3.0);
        let mut m = BTreeMap::new();
        m.insert("a.x".to_string(), a);
        m.insert("b.y".to_string(), b);
        m
    }

    #[test]
    fn wide_csv_unions_times_with_empty_cells() {
        let csv = wide_csv(&two_series());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_us,a.x,b.y");
        assert_eq!(lines[1], "0.700,1.000000,");
        assert_eq!(lines[2], "1.400,2.000000,3.000000");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn jsonl_has_one_object_per_point() {
        let jl = to_jsonl(&two_series());
        assert_eq!(jl.lines().count(), 3);
        assert!(jl.contains("{\"t_us\":0.700,\"metric\":\"a.x\",\"value\":1.0}"));
    }

    #[test]
    fn prometheus_text_mangles_names_and_expands_histograms() {
        let mut r = MetricRegistry::new();
        r.counter_set("host.nic.drops", 4);
        r.gauge_set("host.mba.level", 2.0);
        r.histogram_record("core.signals.read_latency_ns", 850.0);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE hostcc_host_nic_drops counter"));
        assert!(text.contains("hostcc_host_nic_drops 4"));
        assert!(text.contains("hostcc_host_mba_level 2.0"));
        assert!(text.contains("hostcc_core_signals_read_latency_ns_count 1"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn summary_json_reports_violations_and_fingerprint() {
        let mut t = Telemetry::default();
        t.registry_mut().gauge_set("g", 1.0);
        t.sample_only(Nanos::ZERO);
        let json = summary_json(&t.finish());
        assert!(json.contains("\"samples\": 1"));
        assert!(json.contains("\"watchdog_violations\": 0"));
        assert!(json.contains("\"fingerprint\": \"0x"));
        assert!(json.contains("\"diagnostic\": null"));
    }
}
