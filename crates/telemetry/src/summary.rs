//! Compact, mergeable per-run telemetry summaries and their fingerprints.
//!
//! The sweep engine attaches one summary per grid cell and merges worker
//! outputs at the join; merge is commutative and associative with the
//! empty summary as identity, so the join order never shows in results.

use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a_bytes(h, &v.to_le_bytes())
}

/// Running statistics for one gauge over a sampling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Default for GaugeStat {
    fn default() -> Self {
        GaugeStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GaugeStat {
    /// Fold one observation into the stats.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean observed value, if any observation was made.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Merge another stat into this one (commutative).
    pub fn merge(&mut self, other: &GaugeStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A deterministic digest of one run's telemetry: sample/check totals,
/// final counters, per-gauge statistics and per-invariant violations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Samples taken in the measurement window.
    pub samples: u64,
    /// Watchdog evaluations performed.
    pub checks: u64,
    /// Final counter values, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Per-gauge window statistics, by metric name.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Violation counts, by invariant name (absent = zero).
    pub violations: BTreeMap<String, u64>,
}

impl TelemetrySummary {
    /// Total watchdog violations across all invariants.
    pub fn total_violations(&self) -> u64 {
        self.violations.values().sum()
    }

    /// Merge another summary into this one. Counters and violations add,
    /// gauge stats fold elementwise; commutative and associative with
    /// `TelemetrySummary::default()` as identity.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.samples += other.samples;
        self.checks += other.checks;
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, st) in &other.gauges {
            self.gauges.entry(k.clone()).or_default().merge(st);
        }
        for (k, v) in &other.violations {
            *self.violations.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// FNV-1a fingerprint over every deterministic field, in sorted metric
    /// order. Two runs with bit-identical telemetry produce the same
    /// fingerprint regardless of worker count or join order.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_u64(h, self.samples);
        h = fnv1a_u64(h, self.checks);
        for (name, &v) in &self.counters {
            h = fnv1a_bytes(h, name.as_bytes());
            h = fnv1a_u64(h, v);
        }
        for (name, st) in &self.gauges {
            h = fnv1a_bytes(h, name.as_bytes());
            h = fnv1a_u64(h, st.count);
            h = fnv1a_u64(h, st.sum.to_bits());
            h = fnv1a_u64(h, st.min.to_bits());
            h = fnv1a_u64(h, st.max.to_bits());
        }
        for (name, &v) in &self.violations {
            h = fnv1a_bytes(h, name.as_bytes());
            h = fnv1a_u64(h, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_summary(seed: u64) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            samples: seed % 100,
            checks: seed % 50,
            ..Default::default()
        };
        s.counters.insert(format!("c{}", seed % 3), seed);
        let mut st = GaugeStat::default();
        st.observe(seed as f64);
        st.observe((seed / 2) as f64);
        s.gauges.insert(format!("g{}", seed % 2), st);
        if seed.is_multiple_of(4) {
            s.violations.insert("pcie_credits".into(), seed % 7);
        }
        s
    }

    #[test]
    fn merge_identity() {
        let a = sample_summary(42);
        let mut b = a.clone();
        b.merge(&TelemetrySummary::default());
        assert_eq!(a, b);
        let mut e = TelemetrySummary::default();
        e.merge(&a);
        assert_eq!(a, e);
    }

    proptest! {
        #[test]
        fn merge_is_commutative(x in 0u64..10_000, y in 0u64..10_000) {
            let (a, b) = (sample_summary(x), sample_summary(y));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(ab.fingerprint(), ba.fingerprint());
        }

        #[test]
        fn merge_is_associative(x in 0u64..1_000, y in 0u64..1_000, z in 0u64..1_000) {
            let (a, b, c) = (sample_summary(x), sample_summary(y), sample_summary(z));
            let mut ab_c = a.clone();
            ab_c.merge(&b);
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab_c, a_bc);
        }
    }

    #[test]
    fn fingerprint_distinguishes_summaries() {
        assert_ne!(
            sample_summary(1).fingerprint(),
            sample_summary(2).fingerprint()
        );
        assert_eq!(
            sample_summary(3).fingerprint(),
            sample_summary(3).fingerprint()
        );
    }
}
