//! The deterministic periodic sampler: snapshots registered gauges into
//! bounded time series at a fixed simulated-time cadence.

use std::collections::BTreeMap;

use hostcc_metrics::TimeSeries;
use hostcc_sim::Nanos;

use crate::registry::{MetricRegistry, TelemetryFilter};
use crate::summary::GaugeStat;

/// Default sampling interval: the hostCC sampling interval from the paper
/// (§3.1), i.e. one sample per 700 ns of simulated time.
pub const DEFAULT_SAMPLE_INTERVAL: Nanos = Nanos::from_nanos(700);

/// Default per-series retention bound (stride-doubling kicks in beyond it).
pub const DEFAULT_MAX_POINTS: usize = 4096;

/// Snapshots gauges into per-metric [`TimeSeries`] once per interval.
///
/// The sampler is driven from the simulation's tick loop: the sim asks
/// [`Sampler::due`] at each tick and, when due, refreshes the registry's
/// gauges and calls [`Sampler::sample`]. Everything is a pure function of
/// simulated time and model state, so sampled output is bit-identical
/// across runs and worker counts.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: Nanos,
    max_points: usize,
    filter: TelemetryFilter,
    next_at: Nanos,
    samples: u64,
    series: BTreeMap<String, TimeSeries>,
    stats: BTreeMap<String, GaugeStat>,
}

impl Sampler {
    /// A sampler with the given cadence, retention bound and metric filter.
    pub fn new(interval: Nanos, max_points: usize, filter: TelemetryFilter) -> Self {
        Sampler {
            interval: interval.max(Nanos::from_nanos(1)),
            max_points,
            filter,
            next_at: Nanos::ZERO,
            samples: 0,
            series: BTreeMap::new(),
            stats: BTreeMap::new(),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Whether a sample is due at simulated time `now`.
    pub fn due(&self, now: Nanos) -> bool {
        now >= self.next_at
    }

    /// Snapshot every filtered gauge in `registry` at time `now` and
    /// schedule the next sample one interval later.
    pub fn sample(&mut self, now: Nanos, registry: &MetricRegistry) {
        for (name, v) in registry.gauges() {
            if !self.filter.wants(name) {
                continue;
            }
            if let Some(s) = self.series.get_mut(name) {
                s.push(now, v);
            } else {
                let mut s = TimeSeries::with_capacity(name, self.max_points);
                s.push(now, v);
                self.series.insert(name.to_string(), s);
            }
            if let Some(st) = self.stats.get_mut(name) {
                st.observe(v);
            } else {
                let mut st = GaugeStat::default();
                st.observe(v);
                self.stats.insert(name.to_string(), st);
            }
        }
        self.samples += 1;
        self.next_at = now + self.interval;
    }

    /// Number of samples taken since the last [`Sampler::reset_window`].
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The recorded series, keyed by metric name.
    pub fn series(&self) -> &BTreeMap<String, TimeSeries> {
        &self.series
    }

    /// Running per-gauge statistics over all samples in the window (not
    /// subject to the retention bound).
    pub fn stats(&self) -> &BTreeMap<String, GaugeStat> {
        &self.stats
    }

    /// Drop everything recorded so far (called at the warmup/measure
    /// boundary so exported series cover the measurement window only).
    /// The sampling cadence itself is unaffected.
    pub fn reset_window(&mut self) {
        self.series.clear();
        self.stats.clear();
        self.samples = 0;
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::new(
            DEFAULT_SAMPLE_INTERVAL,
            DEFAULT_MAX_POINTS,
            TelemetryFilter::all(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_at_fixed_cadence() {
        let mut reg = MetricRegistry::new();
        let mut s = Sampler::new(Nanos::from_nanos(700), 0, TelemetryFilter::all());
        let mut taken = 0u64;
        for tick in 0..100u64 {
            let now = Nanos::from_nanos(tick * 100);
            reg.gauge_set("host.iio.occupancy_bytes", tick as f64);
            if s.due(now) {
                s.sample(now, &reg);
                taken += 1;
            }
        }
        // 0, 700, 1400, … 9800 → 15 samples over 10 µs.
        assert_eq!(taken, 15);
        assert_eq!(s.samples(), 15);
        let series = &s.series()["host.iio.occupancy_bytes"];
        assert_eq!(series.len(), 15);
        assert_eq!(series.iter().next().unwrap().0, Nanos::ZERO);
    }

    #[test]
    fn filter_limits_recorded_series() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("host.iio.occupancy_bytes", 1.0);
        reg.gauge_set("host.pcie.bw_gbps", 2.0);
        let mut s = Sampler::new(
            Nanos::from_nanos(700),
            0,
            TelemetryFilter::parse("host.pcie").unwrap(),
        );
        s.sample(Nanos::ZERO, &reg);
        assert_eq!(s.series().len(), 1);
        assert!(s.series().contains_key("host.pcie.bw_gbps"));
    }

    #[test]
    fn reset_window_clears_series_but_keeps_cadence() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("g", 1.0);
        let mut s = Sampler::default();
        s.sample(Nanos::ZERO, &reg);
        assert!(!s.due(Nanos::from_nanos(100)));
        s.reset_window();
        assert!(s.series().is_empty());
        assert_eq!(s.samples(), 0);
        assert!(!s.due(Nanos::from_nanos(100)));
        assert!(s.due(Nanos::from_nanos(700)));
    }

    #[test]
    fn stats_track_all_samples() {
        let mut reg = MetricRegistry::new();
        let mut s = Sampler::new(Nanos::from_nanos(1), 16, TelemetryFilter::all());
        for i in 0..1000u64 {
            reg.gauge_set("g", i as f64);
            s.sample(Nanos::from_nanos(i), &reg);
        }
        // Series is bounded, stats are not.
        assert!(s.series()["g"].len() <= 16);
        let st = &s.stats()["g"];
        assert_eq!(st.count, 1000);
        assert_eq!(st.min, 0.0);
        assert_eq!(st.max, 999.0);
    }
}
