//! hostcc-telemetry: periodic gauge sampling, a metric registry, and an
//! invariant watchdog for the hostCC model.
//!
//! The paper's argument is about *state over time* — IIO occupancy `I_S`,
//! PCIe bandwidth `B_S`, credit levels, the MBA throttle level. Discrete
//! trace events (hostcc-trace) show *what happened*; this crate shows
//! *what the state was*, uniformly, for every run:
//!
//! - [`MetricRegistry`] — hierarchical named counters, gauges and
//!   log-bucketed histograms (`host.iio.occupancy_bytes`,
//!   `host.pcie.credits_avail`, `core.echo.ecn_marks`, …);
//! - [`Sampler`] — deterministic periodic snapshots of every registered
//!   gauge into bounded [`hostcc_metrics::TimeSeries`], one sample per
//!   interval of simulated time (default: the 700 ns hostCC sampling
//!   interval), exported as wide CSV, JSONL or Prometheus text;
//! - [`InvariantWatchdog`] — conservation checks (NIC packets, PCIe
//!   credits, IIO byte accounting, MBA level range) evaluated at every
//!   sample, with a strict mode that fails the run on the first leak;
//! - [`TelemetryHandle`] — a cloneable shared handle in the style of
//!   `TraceHandle`: when disabled, instrumentation costs one `Option`
//!   check and never evaluates its closures.
//!
//! ```
//! use hostcc_sim::Nanos;
//! use hostcc_telemetry::{Telemetry, TelemetryHandle, WatchdogInput};
//!
//! let handle = TelemetryHandle::new(Telemetry::default());
//! // The simulation refreshes gauges and samples when due:
//! let input = WatchdogInput { mba_levels: 5, pcie_credit_limit_bytes: 5952.0,
//!                             ..Default::default() };
//! handle.with_mut(|t| {
//!     t.registry_mut().gauge_set("host.iio.occupancy_bytes", 640.0);
//!     if t.due(Nanos::from_nanos(700)) {
//!         t.check_and_sample(Nanos::from_nanos(700), &input);
//!     }
//! });
//! let result = handle.result().unwrap();
//! assert_eq!(result.summary.samples, 1);
//! assert_eq!(result.summary.total_violations(), 0);
//! assert!(hostcc_telemetry::wide_csv(&result.series)
//!     .starts_with("time_us,host.iio.occupancy_bytes"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod handle;
mod registry;
mod sampler;
mod summary;
mod watchdog;

pub use export::{prometheus_text, summary_json, to_jsonl, wide_csv};
pub use handle::{Telemetry, TelemetryConfig, TelemetryHandle, TelemetryResult};
pub use registry::{LogHistogram, MetricRegistry, TelemetryFilter, HISTOGRAM_BUCKETS};
pub use sampler::{Sampler, DEFAULT_MAX_POINTS, DEFAULT_SAMPLE_INTERVAL};
pub use summary::{GaugeStat, TelemetrySummary};
pub use watchdog::{
    Invariant, InvariantWatchdog, Violation, WatchdogInput, ALL_INVARIANTS, INVARIANT_COUNT,
};
