//! The telemetry pipeline object and its zero-cost shared handle.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use hostcc_metrics::TimeSeries;
use hostcc_sim::Nanos;

use crate::registry::{MetricRegistry, TelemetryFilter};
use crate::sampler::{Sampler, DEFAULT_MAX_POINTS, DEFAULT_SAMPLE_INTERVAL};
use crate::summary::TelemetrySummary;
use crate::watchdog::{InvariantWatchdog, WatchdogInput, ALL_INVARIANTS};

/// Configuration for a [`Telemetry`] pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Sampling cadence in simulated time (default: the 700 ns hostCC
    /// sampling interval).
    pub interval: Nanos,
    /// Per-series retention bound (stride-doubling beyond it; 0 = unbounded).
    pub max_points: usize,
    /// Which metrics the sampler records.
    pub filter: TelemetryFilter,
    /// Whether invariant violations should fail the run.
    pub strict: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: DEFAULT_SAMPLE_INTERVAL,
            max_points: DEFAULT_MAX_POINTS,
            filter: TelemetryFilter::all(),
            strict: false,
        }
    }
}

/// The full telemetry pipeline: registry + periodic sampler + watchdog.
///
/// The owning simulation updates registry gauges and calls
/// [`Telemetry::check_and_sample`] whenever a sample is due; everything
/// else (series retention, watchdog bookkeeping, summaries) happens here.
#[derive(Debug, Clone)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    registry: MetricRegistry,
    sampler: Sampler,
    watchdog: InvariantWatchdog,
}

impl Telemetry {
    /// A pipeline with the given configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let sampler = Sampler::new(cfg.interval, cfg.max_points, cfg.filter.clone());
        Telemetry {
            cfg,
            registry: MetricRegistry::new(),
            sampler,
            watchdog: InvariantWatchdog::new(),
        }
    }

    /// The configuration this pipeline was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Mutable access to the metric registry (for gauge/counter updates).
    pub fn registry_mut(&mut self) -> &mut MetricRegistry {
        &mut self.registry
    }

    /// Read access to the metric registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Whether a sample is due at simulated time `now`.
    pub fn due(&self, now: Nanos) -> bool {
        self.sampler.due(now)
    }

    /// Run the watchdog over `input`, mirror violation counters into the
    /// registry, and snapshot all gauges. Call only when [`Telemetry::due`].
    pub fn check_and_sample(&mut self, now: Nanos, input: &WatchdogInput) {
        self.watchdog.check(now, input);
        self.mirror_watchdog_counters();
        self.sampler.sample(now, &self.registry);
    }

    /// Snapshot gauges without a watchdog check (used by callers that have
    /// no host to probe, e.g. unit fixtures).
    pub fn sample_only(&mut self, now: Nanos) {
        self.sampler.sample(now, &self.registry);
    }

    fn mirror_watchdog_counters(&mut self) {
        self.registry
            .counter_set("watchdog.checks", self.watchdog.checks());
        self.registry
            .counter_set("watchdog.violations", self.watchdog.total_violations());
        // Also exposed as a gauge: counters are not recorded as series, and
        // the chaos harness needs the violation count *over time* to
        // attribute each violation to (or outside) a fault window.
        self.registry.gauge_set(
            "watchdog.violations_running",
            self.watchdog.total_violations() as f64,
        );
        for inv in ALL_INVARIANTS {
            let n = self.watchdog.violations_of(inv);
            if n > 0 {
                self.registry
                    .counter_set(&format!("watchdog.violations.{}", inv.name()), n);
            }
        }
    }

    /// The invariant watchdog.
    pub fn watchdog(&self) -> &InvariantWatchdog {
        &self.watchdog
    }

    /// Drop recorded series/stats at the warmup→measure boundary. Counters
    /// and watchdog totals are cumulative and survive the reset.
    pub fn reset_window(&mut self) {
        self.sampler.reset_window();
    }

    /// Build the deterministic summary of this run's telemetry.
    pub fn summary(&self) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            samples: self.sampler.samples(),
            checks: self.watchdog.checks(),
            ..Default::default()
        };
        for (name, v) in self.registry.counters() {
            s.counters.insert(name.to_string(), v);
        }
        for (name, st) in self.sampler.stats() {
            s.gauges.insert(name.clone(), *st);
        }
        for inv in ALL_INVARIANTS {
            let n = self.watchdog.violations_of(inv);
            if n > 0 {
                s.violations.insert(inv.name().to_string(), n);
            }
        }
        s
    }

    /// Freeze the pipeline into an exportable result.
    pub fn finish(&self) -> TelemetryResult {
        TelemetryResult {
            series: self.sampler.series().clone(),
            registry: self.registry.clone(),
            summary: self.summary(),
            strict: self.cfg.strict,
            diagnostic: self.watchdog.diagnostic(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }
}

/// Everything a finished run's telemetry exports: the recorded series, the
/// final registry state, the mergeable summary, and the strict-mode
/// verdict.
#[derive(Debug, Clone)]
pub struct TelemetryResult {
    /// Recorded gauge series over the measurement window, by metric name.
    pub series: BTreeMap<String, TimeSeries>,
    /// Final registry state (counters, gauges, histograms).
    pub registry: MetricRegistry,
    /// The deterministic summary (what the sweep manifest fingerprints).
    pub summary: TelemetrySummary,
    /// Whether the run was configured to fail on violations.
    pub strict: bool,
    /// First-violation diagnostic, if the watchdog tripped.
    pub diagnostic: Option<String>,
}

impl TelemetryResult {
    /// `Err` with the watchdog's diagnostic when strict mode is on and any
    /// invariant was violated; `Ok` otherwise.
    pub fn strict_verdict(&self) -> Result<(), String> {
        if self.strict && self.summary.total_violations() > 0 {
            Err(self
                .diagnostic
                .clone()
                .unwrap_or_else(|| "invariant violated".to_string()))
        } else {
            Ok(())
        }
    }
}

/// A cloneable, optionally-present handle to a shared [`Telemetry`]
/// pipeline, in the style of `TraceHandle`: a disabled handle is a single
/// `Option` check and never touches the registry, so instrumented code
/// pays nothing when telemetry is off.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle(Option<Rc<RefCell<Telemetry>>>);

impl TelemetryHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TelemetryHandle(None)
    }

    /// A handle sharing ownership of `telemetry`; clones share the same
    /// underlying pipeline.
    pub fn new(telemetry: Telemetry) -> Self {
        TelemetryHandle(Some(Rc::new(RefCell::new(telemetry))))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Run `f` against the pipeline if enabled; the closure is never
    /// called (and its captures never evaluated) when disabled.
    pub fn with<R>(&self, f: impl FnOnce(&Telemetry) -> R) -> Option<R> {
        self.0.as_ref().map(|t| f(&t.borrow()))
    }

    /// Run `f` with mutable access if enabled.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
        self.0.as_ref().map(|t| f(&mut t.borrow_mut()))
    }

    /// The run summary, if enabled.
    pub fn summary(&self) -> Option<TelemetrySummary> {
        self.with(|t| t.summary())
    }

    /// Freeze into an exportable result, if enabled.
    pub fn result(&self) -> Option<TelemetryResult> {
        self.with(|t| t.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        let mut ran = false;
        h.with_mut(|_| ran = true);
        assert!(!ran, "closure must not run on a disabled handle");
        assert!(h.summary().is_none());
        assert!(h.result().is_none());
    }

    #[test]
    fn clones_share_one_pipeline() {
        let h = TelemetryHandle::new(Telemetry::default());
        let h2 = h.clone();
        h.with_mut(|t| t.registry_mut().counter_add("c", 1));
        h2.with_mut(|t| t.registry_mut().counter_add("c", 2));
        assert_eq!(h.with(|t| t.registry().counter("c")), Some(3));
    }

    #[test]
    fn check_and_sample_records_gauges_and_watchdog_counters() {
        let mut t = Telemetry::default();
        t.registry_mut()
            .gauge_set("host.iio.occupancy_bytes", 640.0);
        let input = WatchdogInput {
            mba_levels: 5,
            pcie_credit_limit_bytes: 5952.0,
            ..Default::default()
        };
        assert!(t.due(Nanos::ZERO));
        t.check_and_sample(Nanos::ZERO, &input);
        assert!(!t.due(Nanos::from_nanos(699)));
        let s = t.summary();
        assert_eq!(s.samples, 1);
        assert_eq!(s.checks, 1);
        assert_eq!(s.total_violations(), 0);
        assert_eq!(s.counters["watchdog.violations"], 0);
        assert_eq!(s.gauges["host.iio.occupancy_bytes"].count, 1);
    }

    #[test]
    fn strict_verdict_fails_on_violation() {
        let mut t = Telemetry::new(TelemetryConfig {
            strict: true,
            ..Default::default()
        });
        // mba_levels = 0 makes every level out of range.
        t.check_and_sample(Nanos::from_nanos(700), &WatchdogInput::default());
        let r = t.finish();
        let err = r.strict_verdict().unwrap_err();
        assert!(err.contains("mba_level"), "{err}");
        assert_eq!(r.summary.counters["watchdog.violations"], 1);
    }

    #[test]
    fn reset_window_keeps_watchdog_totals() {
        let mut t = Telemetry::default();
        t.registry_mut().gauge_set("g", 1.0);
        t.check_and_sample(Nanos::ZERO, &WatchdogInput::default());
        t.reset_window();
        let s = t.summary();
        assert_eq!(s.samples, 0);
        assert_eq!(s.checks, 1);
        assert!(s.total_violations() > 0, "mba_levels=0 violates by design");
    }
}
