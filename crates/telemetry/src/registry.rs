//! The metric registry: named counters, gauges and log-bucketed histograms.
//!
//! Metric names form a dotted hierarchy (`host.iio.occupancy_bytes`,
//! `core.echo.ecn_marks`, `transport.flow.3.rate_gbps`, …). The registry is
//! a plain sorted map — iteration order is deterministic, which the sweep
//! fingerprinting relies on.

use std::collections::BTreeMap;

/// Number of power-of-two buckets in a [`LogHistogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent offset: bucket `i` covers values in `[2^(i-32), 2^(i-31))`.
const BUCKET_BIAS: i64 = 32;

/// A fixed-size log2-bucketed histogram of non-negative values.
///
/// Bucket `i` counts values whose binary exponent is `i - 32`, so the
/// histogram spans `[2^-32, 2^32)` with one bucket per octave; values at or
/// below zero land in bucket 0 and values beyond the range clamp to the
/// edge buckets. Bucketing uses the IEEE-754 exponent bits directly, so it
/// is exact and deterministic (no float `log2`).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v.is_infinite() || v <= 0.0 {
            return 0;
        }
        let exponent = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
        (exponent + BUCKET_BIAS).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// The inclusive lower bound of bucket `i` (`2^(i-32)`).
    pub fn bucket_floor(i: usize) -> f64 {
        ((i as i64 - BUCKET_BIAS) as f64).exp2()
    }

    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded (finite) values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Elementwise merge of another histogram into this one. Commutative
    /// and associative, with the empty histogram as identity.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A hierarchical registry of named metrics.
///
/// Three metric kinds:
/// - **counters**: monotonically meaningful `u64` totals (drops, marks);
/// - **gauges**: instantaneous `f64` state (occupancy, credits, level) —
///   these are what the periodic [`crate::Sampler`] snapshots;
/// - **histograms**: log-bucketed distributions of per-event values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set counter `name` to an absolute value (used to mirror cumulative
    /// totals the model already tracks).
    pub fn counter_set(&mut self, name: &str, value: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = value;
        } else {
            self.counters.insert(name.to_string(), value);
        }
    }

    /// Read counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to its current value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Read gauge `name`, if it has ever been set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one value into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = LogHistogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Read histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total number of registered metrics of all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A comma-separated list of dotted-name prefixes selecting which metrics
/// the sampler records (`host.iio,host.pcie`); empty or `all` selects
/// everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryFilter {
    /// `None` selects every metric.
    prefixes: Option<Vec<String>>,
}

impl TelemetryFilter {
    /// Select every metric.
    pub fn all() -> Self {
        TelemetryFilter { prefixes: None }
    }

    /// Parse a comma-separated prefix list; `""` and `"all"` select
    /// everything. Empty parts (`"host.iio,,"`) are rejected.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "all" {
            return Ok(Self::all());
        }
        let mut prefixes = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty prefix in telemetry filter '{spec}'"));
            }
            prefixes.push(part.to_string());
        }
        Ok(TelemetryFilter {
            prefixes: Some(prefixes),
        })
    }

    /// The configured prefixes; `None` when every metric is selected.
    pub fn prefixes(&self) -> Option<&[String]> {
        self.prefixes.as_deref()
    }

    /// Whether metric `name` passes the filter. A prefix matches whole
    /// dotted components: `host.iio` matches `host.iio.occupancy_bytes`
    /// but not `host.iiofoo`.
    pub fn wants(&self, name: &str) -> bool {
        match &self.prefixes {
            None => true,
            Some(ps) => ps.iter().any(|p| {
                name == p
                    || (name.len() > p.len()
                        && name.starts_with(p.as_str())
                        && name.as_bytes()[p.len()] == b'.')
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_octave() {
        assert_eq!(LogHistogram::bucket_index(1.0), 32);
        assert_eq!(LogHistogram::bucket_index(1.5), 32);
        assert_eq!(LogHistogram::bucket_index(2.0), 33);
        assert_eq!(LogHistogram::bucket_index(0.5), 31);
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-3.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::INFINITY), 0);
        assert_eq!(LogHistogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = LogHistogram::new();
        a.record(1.0);
        a.record(4.0);
        let mut b = LogHistogram::new();
        b.record(1.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum(), 6.0);
        assert_eq!(ab.buckets()[32], 2);
    }

    #[test]
    fn registry_counter_gauge_histogram_round_trip() {
        let mut r = MetricRegistry::new();
        r.counter_add("host.nic.drops", 2);
        r.counter_add("host.nic.drops", 3);
        r.counter_set("core.echo.ecn_marks", 7);
        r.gauge_set("host.iio.occupancy_bytes", 640.0);
        r.gauge_set("host.iio.occupancy_bytes", 128.0);
        r.histogram_record("core.signals.read_latency_ns", 850.0);
        assert_eq!(r.counter("host.nic.drops"), 5);
        assert_eq!(r.counter("core.echo.ecn_marks"), 7);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("host.iio.occupancy_bytes"), Some(128.0));
        assert_eq!(r.gauge("missing"), None);
        assert_eq!(
            r.histogram("core.signals.read_latency_ns").unwrap().count(),
            1
        );
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn gauges_iterate_in_name_order() {
        let mut r = MetricRegistry::new();
        r.gauge_set("z.last", 1.0);
        r.gauge_set("a.first", 2.0);
        let names: Vec<&str> = r.gauges().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn filter_matches_whole_components() {
        let f = TelemetryFilter::parse("host.iio, core").unwrap();
        assert!(f.wants("host.iio.occupancy_bytes"));
        assert!(f.wants("host.iio"));
        assert!(f.wants("core.echo.ecn_marks"));
        assert!(!f.wants("host.iiofoo.bar"));
        assert!(!f.wants("host.pcie.bw_gbps"));
    }

    #[test]
    fn filter_all_and_errors() {
        assert!(TelemetryFilter::parse("").unwrap().wants("anything"));
        assert!(TelemetryFilter::parse("all").unwrap().wants("x.y"));
        assert!(TelemetryFilter::parse("host,,core").is_err());
    }
}
